#include "src/machine/machine.h"

#include "src/base/logging.h"

namespace sep {

// The bus the CPU sees: MMU translation, then RAM or I/O-page routing.
class MachineBus : public Bus {
 public:
  explicit MachineBus(Machine& m) : m_(m) {}

  bool Read(VirtAddr addr, AccessKind kind, Word* out) override {
    auto tr = m_.mmu_.Translate(m_.cpu_.psw.mode(), addr, kind);
    if (!tr.translation.has_value()) {
      return false;
    }
    return PhysAccess(tr.translation->phys, /*write=*/false, out, 0);
  }

  bool Write(VirtAddr addr, Word value) override {
    auto tr = m_.mmu_.Translate(m_.cpu_.psw.mode(), addr, AccessKind::kWriteData);
    if (!tr.translation.has_value()) {
      return false;
    }
    return PhysAccess(tr.translation->phys, /*write=*/true, nullptr, value);
  }

 private:
  bool PhysAccess(PhysAddr phys, bool write, Word* out, Word value) {
    if (phys >= m_.config_.io_base) {
      const PhysAddr off = phys - m_.config_.io_base;
      const int slot = static_cast<int>(off / kDeviceRegSpan);
      const int reg = static_cast<int>(off % kDeviceRegSpan);
      if (slot >= static_cast<int>(m_.devices_.size()) ||
          reg >= m_.devices_[slot]->register_count()) {
        return false;  // bus timeout: nonexistent device register
      }
      if (write) {
        m_.devices_[slot]->WriteRegister(reg, value);
      } else {
        *out = m_.devices_[slot]->ReadRegister(reg);
      }
      return true;
    }
    if (!m_.memory_.InRange(phys)) {
      return false;
    }
    if (write) {
      m_.memory_.Write(phys, value);
    } else {
      *out = m_.memory_.Read(phys);
    }
    return true;
  }

  Machine& m_;
};

Machine::Machine(const MachineConfig& config) : config_(config), memory_(config.memory_words) {
  SEP_CHECK(config.io_base >= config.memory_words);
}

std::unique_ptr<Machine> Machine::Clone() const {
  auto copy = std::make_unique<Machine>(config_);
  copy->memory_ = memory_;
  copy->mmu_ = mmu_;
  copy->cpu_ = cpu_;
  for (const auto& dev : devices_) {
    copy->devices_.push_back(dev->Clone());
  }
  copy->halted_ = halted_;
  copy->waiting_ = waiting_;
  copy->tick_ = tick_;
  return copy;
}

int Machine::AddDevice(std::unique_ptr<Device> device) {
  devices_.push_back(std::move(device));
  return static_cast<int>(devices_.size()) - 1;
}

Device* Machine::FindDevice(const std::string& name) {
  for (auto& dev : devices_) {
    if (dev->name() == name) {
      return dev.get();
    }
  }
  return nullptr;
}

Word Machine::PhysRead(PhysAddr addr) const {
  if (addr >= config_.io_base) {
    const PhysAddr off = addr - config_.io_base;
    const int slot = static_cast<int>(off / kDeviceRegSpan);
    const int reg = static_cast<int>(off % kDeviceRegSpan);
    SEP_CHECK(slot < static_cast<int>(devices_.size()));
    // Register reads can have side effects, so a const machine must go
    // through the non-const overload; tests use device accessors instead.
    return const_cast<Device&>(*devices_[slot]).ReadRegister(reg);
  }
  return memory_.Read(addr);
}

void Machine::PhysWrite(PhysAddr addr, Word value) {
  if (addr >= config_.io_base) {
    const PhysAddr off = addr - config_.io_base;
    const int slot = static_cast<int>(off / kDeviceRegSpan);
    const int reg = static_cast<int>(off % kDeviceRegSpan);
    SEP_CHECK(slot < static_cast<int>(devices_.size()));
    devices_[slot]->WriteRegister(reg, value);
    return;
  }
  memory_.Write(addr, value);
}

int Machine::PendingInterrupt() const {
  int best = -1;
  int best_priority = cpu_.psw.priority();
  for (int i = 0; i < static_cast<int>(devices_.size()); ++i) {
    if (devices_[i]->interrupt_pending() && devices_[i]->priority() > best_priority) {
      best = i;
      best_priority = devices_[i]->priority();
    }
  }
  return best;
}

void Machine::HardwareVector(PhysAddr vector) {
  // Save old context, load new PC/PSW from the vector, push old PSW/PC on
  // the (new) stack. This path is only used without a native client.
  const Word old_pc = cpu_.pc();
  const Word old_psw = cpu_.psw.bits();
  cpu_.set_pc(memory_.Read(vector));
  cpu_.psw.set_bits(memory_.Read(vector + 1));
  // Push through the MMU-less kernel view: vectored entry runs in kernel
  // mode and the standalone programs that use this path map kernel space
  // identity, so physical pushes are faithful.
  cpu_.set_sp(static_cast<Word>(cpu_.sp() - 1));
  memory_.Write(cpu_.sp(), old_psw);
  cpu_.set_sp(static_cast<Word>(cpu_.sp() - 1));
  memory_.Write(cpu_.sp(), old_pc);
}

void Machine::DispatchTrap(const TrapInfo& info) {
  if (client_ != nullptr) {
    client_->OnTrap(info);
    return;
  }
  switch (info.kind) {
    case TrapInfo::Kind::kIllegalInstruction:
      HardwareVector(kVectorIllegal);
      break;
    case TrapInfo::Kind::kMmuFault:
      HardwareVector(kVectorMmuFault);
      break;
    case TrapInfo::Kind::kTrapInstruction:
      HardwareVector(kVectorTrap);
      break;
  }
}

StepEvent Machine::Step() {
  StepEvent event = StepCpuPhase();
  for (int i = 0; i < static_cast<int>(devices_.size()); ++i) {
    StepDevicePhase(i);
  }
  ++tick_;
  return event;
}

StepEvent Machine::StepCpuPhase() {
  StepEvent event;

  // Deferred client work takes precedence over everything else; it belongs
  // to the current context and must complete before the next instruction.
  if (client_ != nullptr && !halted_ && client_->OnBeforeExecute()) {
    event.kind = StepEvent::Kind::kKernelWork;
    return event;
  }

  // Interrupt delivery or instruction execution.
  const int irq = PendingInterrupt();
  if (irq >= 0) {
    waiting_ = false;
    devices_[irq]->ClearInterrupt();
    event.kind = StepEvent::Kind::kInterrupt;
    event.device = irq;
    if (client_ != nullptr) {
      client_->OnInterrupt(irq);
    } else {
      HardwareVector(static_cast<PhysAddr>(devices_[irq]->vector()));
    }
  } else if (halted_ || waiting_) {
    event.kind = StepEvent::Kind::kIdle;
  } else {
    MachineBus bus(*this);
    CpuEvent cpu_event = ExecuteOne(cpu_, bus);
    switch (cpu_event.kind) {
      case CpuEventKind::kOk:
        event.kind = StepEvent::Kind::kInstruction;
        break;
      case CpuEventKind::kHalt:
        halted_ = true;
        event.kind = StepEvent::Kind::kInstruction;
        if (client_ != nullptr) {
          client_->OnHalt();
        }
        break;
      case CpuEventKind::kWait:
        waiting_ = true;
        event.kind = StepEvent::Kind::kInstruction;
        break;
      case CpuEventKind::kIllegalInstruction:
        event.kind = StepEvent::Kind::kTrap;
        event.trap = TrapInfo{TrapInfo::Kind::kIllegalInstruction, 0, 0};
        DispatchTrap(event.trap);
        break;
      case CpuEventKind::kBusFault:
        event.kind = StepEvent::Kind::kTrap;
        event.trap = TrapInfo{TrapInfo::Kind::kMmuFault, 0, cpu_event.fault_addr};
        DispatchTrap(event.trap);
        break;
      case CpuEventKind::kTrap:
        event.kind = StepEvent::Kind::kTrap;
        event.trap = TrapInfo{TrapInfo::Kind::kTrapInstruction, cpu_event.trap_code, 0};
        DispatchTrap(event.trap);
        break;
    }
  }
  return event;
}

void Machine::StepDevicePhase(int slot) { devices_[slot]->Step(); }

std::optional<Word> Machine::PeekVirt(VirtAddr addr) const {
  auto tr = mmu_.Translate(cpu_.psw.mode(), addr, AccessKind::kReadInstruction);
  if (!tr.translation.has_value()) {
    return std::nullopt;
  }
  const PhysAddr phys = tr.translation->phys;
  if (phys >= config_.io_base || !memory_.InRange(phys)) {
    return std::nullopt;
  }
  return memory_.Read(phys);
}

std::size_t Machine::Run(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps && !halted_) {
    Step();
    ++steps;
  }
  return steps;
}

std::uint64_t Machine::StateHash() const {
  Hasher h;
  memory_.AppendHash(h);
  mmu_.AppendHash(h);
  cpu_.AppendHash(h);
  for (const auto& dev : devices_) {
    dev->AppendHash(h);
  }
  h.Mix(static_cast<std::uint64_t>(halted_)).Mix(static_cast<std::uint64_t>(waiting_));
  return h.digest();
}

std::vector<Word> Machine::SnapshotFull() const {
  std::vector<Word> out;
  out.reserve(memory_.size() + 64);
  const std::vector<Word>& ram = memory_.raw();
  out.insert(out.end(), ram.begin(), ram.end());
  for (int mode = 0; mode < 2; ++mode) {
    for (int page = 0; page < kPagesPerMode; ++page) {
      const PageRegister& pr = mmu_.page(static_cast<CpuMode>(mode), page);
      out.push_back(static_cast<Word>(pr.base & 0xFFFF));
      out.push_back(static_cast<Word>(pr.base >> 16));
      out.push_back(static_cast<Word>(pr.length & 0xFFFF));
      out.push_back(static_cast<Word>(pr.length >> 16));
      out.push_back(static_cast<Word>(pr.access));
    }
  }
  for (Word r : cpu_.regs) {
    out.push_back(r);
  }
  out.push_back(cpu_.psw.bits());
  for (const auto& dev : devices_) {
    std::vector<Word> ds = dev->SnapshotState();
    out.push_back(static_cast<Word>(ds.size()));
    out.insert(out.end(), ds.begin(), ds.end());
  }
  out.push_back(static_cast<Word>(halted_));
  out.push_back(static_cast<Word>(waiting_));
  return out;
}

}  // namespace sep
