// Physical memory for the SM-11.
//
// A flat array of 16-bit words. The memory itself enforces nothing — all
// protection comes from the MMU — but reads and writes are bounds-checked so
// that simulator bugs surface as hard errors rather than silent corruption.
// The per-word Read/Write checks are debug-only (SEP_DCHECK): they sit on the
// interpreter's innermost path and every caller in the machine already guards
// with InRange(); bulk operations keep the always-on SEP_CHECK.
//
// Write-generation tracking: every mutation bumps a global generation counter
// and a per-page version (pages of 2^kVersionPageShift words). The machine's
// predecoded-instruction cache validates entries against the page versions,
// so self-modifying code and kernel loads invalidate exactly the affected
// pages (see docs/PERFORMANCE.md). Versions are bookkeeping, not
// architectural state: they are excluded from hashing and equality.
#ifndef SRC_MACHINE_MEMORY_H_
#define SRC_MACHINE_MEMORY_H_

#include <cstdint>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/types.h"

namespace sep {

class PhysicalMemory {
 public:
  // Version-tracking granularity: 64 words per page keeps a data store and a
  // nearby instruction stream in separate pages for typical guest layouts,
  // so steady-state data writes do not evict decoded code.
  static constexpr int kVersionPageShift = 6;
  static constexpr std::size_t kVersionPageWords = std::size_t{1} << kVersionPageShift;

  explicit PhysicalMemory(std::size_t words)
      : words_(words, 0), versions_(words / kVersionPageWords + 1, 1) {}

  std::size_t size() const { return words_.size(); }

  Word Read(PhysAddr addr) const {
    SEP_DCHECK(addr < words_.size());
    return words_[addr];
  }

  void Write(PhysAddr addr, Word value) {
    SEP_DCHECK(addr < words_.size());
    words_[addr] = value;
    Touch(addr);
  }

  bool InRange(PhysAddr addr) const { return addr < words_.size(); }

  // Bulk load used by program loaders; addresses beyond the end are an error.
  // Bounds are checked by subtraction so a large `base` cannot wrap the sum.
  void LoadImage(PhysAddr base, const std::vector<Word>& image) {
    SEP_CHECK(base <= words_.size() && image.size() <= words_.size() - base);
    for (std::size_t i = 0; i < image.size(); ++i) {
      words_[base + i] = image[i];
    }
    TouchRange(base, image.size());
  }

  void Fill(PhysAddr base, std::size_t count, Word value) {
    SEP_CHECK(base <= words_.size() && count <= words_.size() - base);
    for (std::size_t i = 0; i < count; ++i) {
      words_[base + i] = value;
    }
    TouchRange(base, count);
  }

  const std::vector<Word>& raw() const { return words_; }

  // --- write-generation tracking (predecode-cache invalidation) ---

  // Monotone counter bumped by every mutation; cheap whole-memory staleness
  // signal.
  std::uint64_t generation() const { return generation_; }

  // Version of the page containing `addr`; never 0 (cache code uses 0 as
  // "no entry").
  std::uint64_t PageVersion(PhysAddr addr) const {
    return versions_[addr >> kVersionPageShift];
  }

  // Raw version table, indexed by addr >> kVersionPageShift. The table never
  // reallocates after construction, so hot loops may hold the pointer across
  // steps instead of re-walking the vector.
  const std::uint64_t* version_data() const { return versions_.data(); }

  void AppendHash(Hasher& hasher) const { hasher.MixRange(words_); }

  // Hash of a subrange; used by per-regime abstraction functions.
  std::uint64_t HashRange(PhysAddr base, std::size_t count) const {
    Hasher h;
    for (std::size_t i = 0; i < count; ++i) {
      h.Mix(words_[base + i]);
    }
    return h.digest();
  }

  std::vector<Word> SnapshotRange(PhysAddr base, std::size_t count) const {
    SEP_CHECK(base <= words_.size() && count <= words_.size() - base);
    return std::vector<Word>(words_.begin() + base, words_.begin() + base + count);
  }

  // Architectural equality is over the stored words only; version counters
  // record mutation history, not state.
  bool operator==(const PhysicalMemory& other) const { return words_ == other.words_; }

 private:
  void Touch(PhysAddr addr) {
    ++generation_;
    ++versions_[addr >> kVersionPageShift];
  }

  void TouchRange(PhysAddr base, std::size_t count) {
    if (count == 0) {
      return;
    }
    ++generation_;
    const std::size_t first = base >> kVersionPageShift;
    const std::size_t last = (base + count - 1) >> kVersionPageShift;
    for (std::size_t page = first; page <= last; ++page) {
      ++versions_[page];
    }
  }

  std::vector<Word> words_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t generation_ = 0;
};

}  // namespace sep

#endif  // SRC_MACHINE_MEMORY_H_
