// Physical memory for the SM-11.
//
// A flat array of 16-bit words. The memory itself enforces nothing — all
// protection comes from the MMU — but reads and writes are bounds-checked so
// that simulator bugs surface as hard errors rather than silent corruption.
#ifndef SRC_MACHINE_MEMORY_H_
#define SRC_MACHINE_MEMORY_H_

#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/types.h"

namespace sep {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::size_t words) : words_(words, 0) {}

  std::size_t size() const { return words_.size(); }

  Word Read(PhysAddr addr) const {
    SEP_CHECK(addr < words_.size());
    return words_[addr];
  }

  void Write(PhysAddr addr, Word value) {
    SEP_CHECK(addr < words_.size());
    words_[addr] = value;
  }

  bool InRange(PhysAddr addr) const { return addr < words_.size(); }

  // Bulk load used by program loaders; addresses beyond the end are an error.
  void LoadImage(PhysAddr base, const std::vector<Word>& image) {
    SEP_CHECK(base + image.size() <= words_.size());
    for (std::size_t i = 0; i < image.size(); ++i) {
      words_[base + i] = image[i];
    }
  }

  void Fill(PhysAddr base, std::size_t count, Word value) {
    SEP_CHECK(base + count <= words_.size());
    for (std::size_t i = 0; i < count; ++i) {
      words_[base + i] = value;
    }
  }

  const std::vector<Word>& raw() const { return words_; }

  void AppendHash(Hasher& hasher) const { hasher.MixRange(words_); }

  // Hash of a subrange; used by per-regime abstraction functions.
  std::uint64_t HashRange(PhysAddr base, std::size_t count) const {
    Hasher h;
    for (std::size_t i = 0; i < count; ++i) {
      h.Mix(words_[base + i]);
    }
    return h.digest();
  }

  std::vector<Word> SnapshotRange(PhysAddr base, std::size_t count) const {
    SEP_CHECK(base + count <= words_.size());
    return std::vector<Word>(words_.begin() + base, words_.begin() + base + count);
  }

  bool operator==(const PhysicalMemory& other) const = default;

 private:
  std::vector<Word> words_;
};

}  // namespace sep

#endif  // SRC_MACHINE_MEMORY_H_
