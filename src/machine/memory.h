// Physical memory for the SM-11.
//
// A flat 16-bit-word address space backed by copy-on-write pages: the words
// live in fixed-size page blocks held through shared_ptr, so cloning a
// memory (and therefore a whole Machine) copies page *references*, not
// words. A store first checks whether the page is exclusively owned and
// copies it only when it is shared — the Proof-of-Separability checker
// clones machines per explored transition, and almost all pages of those
// clones are never written. The memory itself enforces nothing — all
// protection comes from the MMU — but reads and writes are bounds-checked so
// that simulator bugs surface as hard errors rather than silent corruption.
// The per-word Read/Write checks are debug-only (SEP_DCHECK): they sit on the
// interpreter's innermost path and every caller in the machine already guards
// with InRange(); bulk operations keep the always-on SEP_CHECK.
//
// Write-generation tracking: every mutation bumps a global generation counter
// and a per-page version (pages of 2^kVersionPageShift words). The machine's
// predecoded-instruction cache validates entries against the page versions,
// so self-modifying code and kernel loads invalidate exactly the affected
// pages (see docs/PERFORMANCE.md). Versions are bookkeeping, not
// architectural state: they are excluded from hashing and equality, and a
// copy-on-write page copy does NOT bump them (the content is unchanged).
// The version table is independent of the COW page granularity and never
// reallocates, so hot loops may cache its pointer.
#ifndef SRC_MACHINE_MEMORY_H_
#define SRC_MACHINE_MEMORY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/types.h"

namespace sep {

class PhysicalMemory {
 public:
  // Version-tracking granularity: 64 words per page keeps a data store and a
  // nearby instruction stream in separate pages for typical guest layouts,
  // so steady-state data writes do not evict decoded code.
  static constexpr int kVersionPageShift = 6;
  static constexpr std::size_t kVersionPageWords = std::size_t{1} << kVersionPageShift;

  // Copy-on-write granularity: 256 words (512 bytes) balances sharing
  // (fine enough that a regime's working set leaves the rest of memory
  // shared) against per-clone bookkeeping (coarse enough that the page
  // table stays small).
  static constexpr int kCowPageShift = 8;
  static constexpr std::size_t kCowPageWords = std::size_t{1} << kCowPageShift;

  explicit PhysicalMemory(std::size_t words)
      : size_(words),
        pages_((words + kCowPageWords - 1) / kCowPageWords, ZeroPage()),
        versions_(words / kVersionPageWords + 1, 1) {}

  std::size_t size() const { return size_; }

  Word Read(PhysAddr addr) const {
    SEP_DCHECK(addr < size_);
    return pages_[addr >> kCowPageShift]->words[addr & (kCowPageWords - 1)];
  }

  void Write(PhysAddr addr, Word value) {
    SEP_DCHECK(addr < size_);
    MutablePage(addr >> kCowPageShift).words[addr & (kCowPageWords - 1)] = value;
    Touch(addr);
  }

  bool InRange(PhysAddr addr) const { return addr < size_; }

  // Bulk load used by program loaders; addresses beyond the end are an error.
  // Bounds are checked by subtraction so a large `base` cannot wrap the sum.
  void LoadImage(PhysAddr base, const std::vector<Word>& image) {
    SEP_CHECK(base <= size_ && image.size() <= size_ - base);
    CopyIn(base, image.data(), image.size());
    TouchRange(base, image.size());
  }

  void Fill(PhysAddr base, std::size_t count, Word value) {
    SEP_CHECK(base <= size_ && count <= size_ - base);
    std::size_t i = 0;
    while (i < count) {
      const PhysAddr addr = base + static_cast<PhysAddr>(i);
      Page& page = MutablePage(addr >> kCowPageShift);
      const std::size_t offset = addr & (kCowPageWords - 1);
      const std::size_t run = std::min(count - i, kCowPageWords - offset);
      for (std::size_t k = 0; k < run; ++k) {
        page.words[offset + k] = value;
      }
      i += run;
    }
    TouchRange(base, count);
  }

  // Serializes the whole memory by appending to `out` (the checker's
  // FullState path; avoids a fresh allocation per snapshot).
  void AppendTo(std::vector<Word>& out) const {
    out.reserve(out.size() + size_);
    ForEachRun(0, size_, [&](const Word* run, std::size_t n) {
      out.insert(out.end(), run, run + n);
    });
  }

  // Overwrites the whole memory from a flat image, bumping versions only for
  // the 64-word version pages whose content actually changes — so restoring
  // a state the machine is already in is version-neutral and predecoded
  // code whose bytes are unchanged stays valid. Pages whose full content is
  // unchanged stay shared (no copy-on-write fault).
  void RestoreWords(std::span<const Word> image) {
    SEP_CHECK(image.size() == size_);
    bool changed = false;
    for (std::size_t page = 0; page < pages_.size(); ++page) {
      const std::size_t base = page * kCowPageWords;
      const std::size_t count = std::min(kCowPageWords, size_ - base);
      const Word* src = image.data() + base;
      const Word* cur = pages_[page]->words.data();
      if (std::memcmp(cur, src, count * sizeof(Word)) == 0) {
        continue;
      }
      changed = true;
      // Bump versions at the finer version-page granularity before the
      // coarse copy clobbers the old content.
      for (std::size_t sub = 0; sub < count; sub += kVersionPageWords) {
        const std::size_t run = std::min(kVersionPageWords, count - sub);
        if (std::memcmp(cur + sub, src + sub, run * sizeof(Word)) != 0) {
          ++versions_[(base + sub) >> kVersionPageShift];
        }
      }
      Page& dst = MutablePage(page);
      std::memcpy(dst.words.data(), src, count * sizeof(Word));
    }
    if (changed) {
      ++generation_;
    }
  }

  // --- write-generation tracking (predecode-cache invalidation) ---

  // Monotone counter bumped by every mutation; cheap whole-memory staleness
  // signal.
  std::uint64_t generation() const { return generation_; }

  // Version of the page containing `addr`; never 0 (cache code uses 0 as
  // "no entry").
  std::uint64_t PageVersion(PhysAddr addr) const {
    return versions_[addr >> kVersionPageShift];
  }

  // Index of `addr`'s version page in the raw table below. The machine's
  // superblock guards record (index, version) pairs over every page a
  // stitched trace covers, so one entry check replaces the per-step
  // version/version_last compares for the whole range.
  static constexpr std::size_t VersionIndex(PhysAddr addr) {
    return addr >> kVersionPageShift;
  }

  // Raw version table, indexed by addr >> kVersionPageShift. The table never
  // reallocates after construction, so hot loops may hold the pointer across
  // steps instead of re-walking the vector.
  const std::uint64_t* version_data() const { return versions_.data(); }

  void AppendHash(Hasher& hasher) const {
    hasher.Mix(size_);
    ForEachRun(0, size_, [&](const Word* run, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        hasher.Mix(run[i]);
      }
    });
  }

  // Hash of a subrange; used by per-regime abstraction functions.
  std::uint64_t HashRange(PhysAddr base, std::size_t count) const {
    Hasher h;
    ForEachRun(base, count, [&](const Word* run, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h.Mix(run[i]);
      }
    });
    return h.digest();
  }

  std::vector<Word> SnapshotRange(PhysAddr base, std::size_t count) const {
    SEP_CHECK(base <= size_ && count <= size_ - base);
    std::vector<Word> out;
    out.reserve(count);
    ForEachRun(base, count, [&](const Word* run, std::size_t n) {
      out.insert(out.end(), run, run + n);
    });
    return out;
  }

  // Architectural equality is over the stored words only; version counters
  // record mutation history, not state. Shared pages compare by pointer.
  bool operator==(const PhysicalMemory& other) const {
    if (size_ != other.size_) {
      return false;
    }
    for (std::size_t page = 0; page < pages_.size(); ++page) {
      if (pages_[page] == other.pages_[page]) {
        continue;
      }
      const std::size_t base = page * kCowPageWords;
      const std::size_t count = std::min(kCowPageWords, size_ - base);
      if (std::memcmp(pages_[page]->words.data(), other.pages_[page]->words.data(),
                      count * sizeof(Word)) != 0) {
        return false;
      }
    }
    return true;
  }

  // Number of COW pages this memory does not share with any other holder
  // (diagnostics: a freshly cloned memory reports 0).
  std::size_t PrivatePageCount() const {
    std::size_t owned = 0;
    for (const auto& page : pages_) {
      if (page.use_count() == 1) {
        ++owned;
      }
    }
    return owned;
  }

 private:
  struct Page {
    std::array<Word, kCowPageWords> words;
  };

  // All-zero page shared by every freshly constructed memory. The static
  // reference keeps its use_count above 1 forever, so MutablePage can never
  // consider it exclusively owned and write into it.
  static const std::shared_ptr<Page>& ZeroPage() {
    static const std::shared_ptr<Page> kZero = [] {
      auto page = std::make_shared<Page>();
      page->words.fill(0);
      return page;
    }();
    return kZero;
  }

  // The copy-on-write fault: pages written while shared are copied first.
  // use_count() is an atomic load; a page observed exclusive cannot gain
  // holders concurrently, because every other holder would have to copy from
  // *this* memory object, and concurrent mutation of one PhysicalMemory is
  // already a data race by contract (clones of it are independent).
  Page& MutablePage(std::size_t page_index) {
    std::shared_ptr<Page>& slot = pages_[page_index];
    if (slot.use_count() != 1) {
      slot = std::make_shared<Page>(*slot);
    }
    return *slot;
  }

  void CopyIn(PhysAddr base, const Word* src, std::size_t count) {
    std::size_t i = 0;
    while (i < count) {
      const PhysAddr addr = base + static_cast<PhysAddr>(i);
      Page& page = MutablePage(addr >> kCowPageShift);
      const std::size_t offset = addr & (kCowPageWords - 1);
      const std::size_t run = std::min(count - i, kCowPageWords - offset);
      std::memcpy(page.words.data() + offset, src + i, run * sizeof(Word));
      i += run;
    }
  }

  // Invokes fn(run_pointer, run_length) over the contiguous page segments of
  // [base, base + count).
  template <typename Fn>
  void ForEachRun(PhysAddr base, std::size_t count, Fn&& fn) const {
    std::size_t i = 0;
    while (i < count) {
      const PhysAddr addr = base + static_cast<PhysAddr>(i);
      const std::size_t offset = addr & (kCowPageWords - 1);
      const std::size_t run = std::min(count - i, kCowPageWords - offset);
      fn(pages_[addr >> kCowPageShift]->words.data() + offset, run);
      i += run;
    }
  }

  void Touch(PhysAddr addr) {
    ++generation_;
    ++versions_[addr >> kVersionPageShift];
  }

  void TouchRange(PhysAddr base, std::size_t count) {
    if (count == 0) {
      return;
    }
    ++generation_;
    const std::size_t first = base >> kVersionPageShift;
    const std::size_t last = (base + count - 1) >> kVersionPageShift;
    for (std::size_t page = first; page <= last; ++page) {
      ++versions_[page];
    }
  }

  std::size_t size_;
  std::vector<std::shared_ptr<Page>> pages_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t generation_ = 0;
};

}  // namespace sep

#endif  // SRC_MACHINE_MEMORY_H_
