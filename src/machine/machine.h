// The complete SM-11 machine: CPU + MMU + physical memory + devices.
//
// The machine is the "concrete machine" of the paper's Section 4. Its
// complete state — memory, CPU registers, MMU registers, device state,
// pending interrupts — is what the Proof-of-Separability abstraction
// functions project per colour. The machine is deep-cloneable so the checker
// can replay operations from identical or Φ-equivalent states.
//
// Control transfers (traps, kernel-call TRAPs, interrupts) can be handled in
// two ways:
//   * a native MachineClient (the separation kernel implemented in C++,
//     playing the role SUE's machine code played) intercepts them and
//     manipulates machine state directly; or
//   * with no client installed, the machine vectors through the in-memory
//     vector table like real hardware — used by standalone SM-11 programs
//     and assembler tests.
//
// IMPORTANT INVARIANT for verification: a MachineClient must keep ALL of its
// dynamic state inside the machine's physical memory (its kernel partition),
// exactly as SUE's data lived in PDP-11 core. Then cloning the machine and
// attaching an identically-configured client reproduces behaviour exactly,
// and "the whole concrete state" really is the machine state.
#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/types.h"
#include "src/machine/cpu.h"
#include "src/machine/device.h"
#include "src/machine/memory.h"
#include "src/machine/mmu.h"

namespace sep {

// Hardware vector table layout (physical word addresses) used when no native
// client is installed. Each vector is two words: new PC, new PSW.
inline constexpr PhysAddr kVectorIllegal = 2;
inline constexpr PhysAddr kVectorMmuFault = 4;
inline constexpr PhysAddr kVectorTrap = 6;
// Device vectors are assigned per device at construction (>= 16).

// Each device owns an 8-word block of the I/O page.
inline constexpr int kDeviceRegSpan = 8;

struct MachineConfig {
  std::size_t memory_words = 1u << 16;
  PhysAddr io_base = 0x40000;  // device registers live at io_base + slot*8
};

struct TrapInfo {
  enum class Kind : std::uint8_t { kTrapInstruction, kIllegalInstruction, kMmuFault } kind =
      Kind::kTrapInstruction;
  std::uint16_t code = 0;    // kernel-call code for kTrapInstruction
  VirtAddr fault_addr = 0;   // for kMmuFault
};

class Machine;

class MachineClient {
 public:
  virtual ~MachineClient() = default;
  virtual void OnTrap(const TrapInfo& info) = 0;
  virtual void OnInterrupt(int device_index) = 0;
  virtual void OnHalt() {}
  // Called at the top of every CPU phase. A client that has deferred work
  // for the current context (e.g. the separation kernel completing an AWAIT
  // or delivering a queued interrupt) performs it and returns true; the
  // phase then ends without executing an instruction. This keeps every
  // kernel action attributable to the regime on whose behalf it runs — the
  // property the Proof-of-Separability colouring relies on.
  virtual bool OnBeforeExecute() { return false; }
};

// One machine step, reported for tracing.
struct StepEvent {
  enum class Kind : std::uint8_t {
    kInstruction,
    kInterrupt,
    kTrap,
    kIdle,        // halted or waiting
    kKernelWork,  // client performed deferred work instead of an instruction
  } kind = Kind::kInstruction;
  TrapInfo trap;       // for kTrap
  int device = -1;     // for kInterrupt
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // Deep clone. Devices are cloned; the client is NOT (attach your own).
  std::unique_ptr<Machine> Clone() const;

  // --- configuration ---

  // Adds a device; returns its slot index. Register block: io_base + slot*8.
  int AddDevice(std::unique_ptr<Device> device);

  PhysAddr DeviceRegBase(int slot) const {
    return config_.io_base + static_cast<PhysAddr>(slot) * kDeviceRegSpan;
  }

  void set_client(MachineClient* client) { client_ = client; }

  // --- state access ---

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }
  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  int device_count() const { return static_cast<int>(devices_.size()); }
  Device& device(int slot) { return *devices_[slot]; }
  const Device& device(int slot) const { return *devices_[slot]; }
  Device* FindDevice(const std::string& name);

  bool halted() const { return halted_; }
  void set_halted(bool halted) { halted_ = halted; }
  bool waiting() const { return waiting_; }
  void set_waiting(bool waiting) { waiting_ = waiting; }
  Tick tick() const { return tick_; }

  const MachineConfig& config() const { return config_; }

  // Privileged physical access (native-kernel use; bypasses the MMU exactly
  // as kernel-mode code with identity mapping would).
  Word PhysRead(PhysAddr addr) const;
  void PhysWrite(PhysAddr addr, Word value);

  // Side-effect-free read through the current mode's mapping: RAM words are
  // returned as stored; device-register and unmapped addresses yield
  // nullopt (never touching device state). Used to compute NEXTOP identity.
  std::optional<Word> PeekVirt(VirtAddr addr) const;

  // --- execution ---

  // One machine step: deliver at most one interrupt or execute one
  // instruction, then give every device one activity slot.
  StepEvent Step();

  // The two phases of Step(), separately invokable. The
  // Proof-of-Separability checker drives them individually: the CPU phase is
  // the formal model's "operation", each device phase is one unit of I/O
  // device activity (the Appendix's conditions 3-6).
  StepEvent StepCpuPhase();
  void StepDevicePhase(int slot);

  // Highest-priority deliverable interrupt, or -1. Public so the model
  // adapter can compute COLOUR(s): an operation that will deliver an
  // interrupt is performed on behalf of the interrupting device's owner.
  int PendingInterrupt() const;

  // Runs until halted or `max_steps` exhausted; returns steps taken.
  std::size_t Run(std::size_t max_steps);

  // Hash over the complete machine state (excluding the step counter, which
  // is bookkeeping rather than architectural state).
  std::uint64_t StateHash() const;

  // Complete state serialization; two machines are architecturally equal iff
  // their serializations are equal.
  std::vector<Word> SnapshotFull() const;

 private:
  friend class MachineBus;

  void HardwareVector(PhysAddr vector);
  void DispatchTrap(const TrapInfo& info);

  MachineConfig config_;
  PhysicalMemory memory_;
  Mmu mmu_;
  CpuState cpu_;
  std::vector<std::unique_ptr<Device>> devices_;
  MachineClient* client_ = nullptr;
  bool halted_ = false;
  bool waiting_ = false;
  Tick tick_ = 0;
};

}  // namespace sep

#endif  // SRC_MACHINE_MACHINE_H_
