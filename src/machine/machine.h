// The complete SM-11 machine: CPU + MMU + physical memory + devices.
//
// The machine is the "concrete machine" of the paper's Section 4. Its
// complete state — memory, CPU registers, MMU registers, device state,
// pending interrupts — is what the Proof-of-Separability abstraction
// functions project per colour. The machine is deep-cloneable so the checker
// can replay operations from identical or Φ-equivalent states.
//
// Control transfers (traps, kernel-call TRAPs, interrupts) can be handled in
// two ways:
//   * a native MachineClient (the separation kernel implemented in C++,
//     playing the role SUE's machine code played) intercepts them and
//     manipulates machine state directly; or
//   * with no client installed, the machine vectors through the in-memory
//     vector table like real hardware — used by standalone SM-11 programs
//     and assembler tests.
//
// IMPORTANT INVARIANT for verification: a MachineClient must keep ALL of its
// dynamic state inside the machine's physical memory (its kernel partition),
// exactly as SUE's data lived in PDP-11 core. Then cloning the machine and
// attaching an identically-configured client reproduces behaviour exactly,
// and "the whole concrete state" really is the machine state.
#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/types.h"
#include "src/machine/cpu.h"
#include "src/machine/device.h"
#include "src/machine/memory.h"
#include "src/machine/mmu.h"

namespace sep {

// Hardware vector table layout (physical word addresses) used when no native
// client is installed. Each vector is two words: new PC, new PSW.
inline constexpr PhysAddr kVectorIllegal = 2;
inline constexpr PhysAddr kVectorMmuFault = 4;
inline constexpr PhysAddr kVectorTrap = 6;
// Device vectors are assigned per device at construction (>= 16).

// Each device owns an 8-word block of the I/O page.
inline constexpr int kDeviceRegSpan = 8;

struct MachineConfig {
  std::size_t memory_words = 1u << 16;
  PhysAddr io_base = 0x40000;  // device registers live at io_base + slot*8
};

struct TrapInfo {
  enum class Kind : std::uint8_t { kTrapInstruction, kIllegalInstruction, kMmuFault } kind =
      Kind::kTrapInstruction;
  std::uint16_t code = 0;    // kernel-call code for kTrapInstruction
  VirtAddr fault_addr = 0;   // for kMmuFault
};

class Machine;
class MachineBus;  // machine.cpp-internal concrete bus

class MachineClient {
 public:
  virtual ~MachineClient() = default;
  virtual void OnTrap(const TrapInfo& info) = 0;
  virtual void OnInterrupt(int device_index) = 0;
  virtual void OnHalt() {}
  // Called at the top of every CPU phase. A client that has deferred work
  // for the current context (e.g. the separation kernel completing an AWAIT
  // or delivering a queued interrupt) performs it and returns true; the
  // phase then ends without executing an instruction. This keeps every
  // kernel action attributable to the regime on whose behalf it runs — the
  // property the Proof-of-Separability colouring relies on.
  virtual bool OnBeforeExecute() { return false; }
};

// One machine step, reported for tracing.
struct StepEvent {
  enum class Kind : std::uint8_t {
    kInstruction,
    kInterrupt,
    kTrap,
    kIdle,        // halted or waiting
    kKernelWork,  // client performed deferred work instead of an instruction
  } kind = Kind::kInstruction;
  TrapInfo trap;       // for kTrap
  int device = -1;     // for kInterrupt
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // Deep clone. Devices are cloned; the client is NOT (attach your own).
  std::unique_ptr<Machine> Clone() const;

  // --- configuration ---

  // Adds a device; returns its slot index. Register block: io_base + slot*8.
  int AddDevice(std::unique_ptr<Device> device);

  PhysAddr DeviceRegBase(int slot) const {
    return config_.io_base + static_cast<PhysAddr>(slot) * kDeviceRegSpan;
  }

  void set_client(MachineClient* client) { client_ = client; }

  // --- state access ---

  CpuState& cpu() { return cpu_; }
  const CpuState& cpu() const { return cpu_; }
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }
  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  int device_count() const { return static_cast<int>(devices_.size()); }
  Device& device(int slot) { return *devices_[slot]; }
  const Device& device(int slot) const { return *devices_[slot]; }
  Device* FindDevice(const std::string& name);

  bool halted() const { return halted_; }
  void set_halted(bool halted) { halted_ = halted; }
  bool waiting() const { return waiting_; }
  void set_waiting(bool waiting) { waiting_ = waiting; }
  Tick tick() const { return tick_; }

  const MachineConfig& config() const { return config_; }

  // Privileged physical access (native-kernel use; bypasses the MMU exactly
  // as kernel-mode code with identity mapping would).
  Word PhysRead(PhysAddr addr) const;
  void PhysWrite(PhysAddr addr, Word value);

  // Side-effect-free read through the current mode's mapping: RAM words are
  // returned as stored; device-register and unmapped addresses yield
  // nullopt (never touching device state). Used to compute NEXTOP identity.
  std::optional<Word> PeekVirt(VirtAddr addr) const;

  // --- execution ---

  // One machine step: deliver at most one interrupt or execute one
  // instruction, then give every device one activity slot.
  StepEvent Step();

  // The two phases of Step(), separately invokable. The
  // Proof-of-Separability checker drives them individually: the CPU phase is
  // the formal model's "operation", each device phase is one unit of I/O
  // device activity (the Appendix's conditions 3-6).
  StepEvent StepCpuPhase();
  void StepDevicePhase(int slot);

  // Highest-priority deliverable interrupt, or -1. Public so the model
  // adapter can compute COLOUR(s): an operation that will deliver an
  // interrupt is performed on behalf of the interrupting device's owner.
  int PendingInterrupt() const;

  // Runs until halted or `max_steps` exhausted; returns steps taken. For
  // machines with no client and no devices the loop is batched: per-step
  // dispatch overhead (interrupt polling, device phases, event plumbing) is
  // hoisted out of the inner loop while remaining step-for-step identical to
  // repeated Step().
  std::size_t Run(std::size_t max_steps);

  // --- predecoded-instruction cache ---
  //
  // The CPU phase serves decoded instructions from a flat cache keyed by the
  // physical address of the instruction word. Entries are validated against
  // PhysicalMemory page versions (self-modifying code) and the current MMU
  // mapping (remaps) on every step, so traces are identical with the cache
  // on or off; see docs/PERFORMANCE.md for the invalidation protocol. The
  // cache is derived state: it is not cloned, hashed, or snapshotted.

  void set_predecode_enabled(bool enabled);
  bool predecode_enabled() const { return predecode_enabled_; }

  // Fast-path statistics (tests assert on invalidation behaviour).
  std::uint64_t predecode_hits() const { return predecode_hits_; }
  std::uint64_t predecode_misses() const { return predecode_misses_; }

  // --- superblock trace cache ---
  //
  // On top of the predecode cache, RunThreaded stitches the instructions
  // reached from a hot taken-branch target into a superblock: a straight-line
  // trace that crosses predicted branch directions. The PSW-mode and
  // MMU-mapping checks are hoisted to superblock entry, and the per-64-word-
  // page version checks are hoisted into entry guards plus a recheck after
  // each instruction that can store to memory — so inside the trace no
  // per-instruction revalidation runs at all. Any guard failure (store into
  // a covered page, MMU remap, RestoreWords changing covered content) tears
  // the superblock down and execution re-enters the per-step slow path;
  // traces are bit-identical to repeated Step(). Like the predecode cache,
  // superblocks are derived state: never cloned, hashed, or snapshotted.

  void set_superblock_enabled(bool enabled);
  bool superblock_enabled() const { return superblock_enabled_; }

  std::uint64_t superblock_builds() const { return superblock_builds_; }
  std::uint64_t superblock_side_exits() const { return superblock_side_exits_; }
  std::uint64_t superblock_invalidations() const { return superblock_invalidations_; }
  std::size_t superblock_count() const { return superblocks_.size(); }

  // Hash over the complete machine state (excluding the step counter, which
  // is bookkeeping rather than architectural state).
  std::uint64_t StateHash() const;

  // Complete state serialization; two machines are architecturally equal iff
  // their serializations are equal.
  std::vector<Word> SnapshotFull() const;

  // SnapshotFull appended to `out` — the exhaustive checker serializes one
  // state per explored transition and reuses the buffer.
  void SnapshotFullInto(std::vector<Word>& out) const;

  // Inverse of SnapshotFull: overwrites the complete architectural state
  // (memory, MMU, CPU, devices, halt/wait latches) from a serialization
  // produced by an identically-configured machine. The step counter is
  // bookkeeping, not architectural state, and is left alone; the predecode
  // cache revalidates itself against the page versions RestoreWords bumps.
  // Returns false — leaving the machine state unspecified — if the snapshot
  // is malformed or a device does not support RestoreState.
  bool RestoreFull(std::span<const Word> snapshot);

 private:
  friend class MachineBus;

  // One predecoded instruction: the decode plus its extension words, valid
  // while the page versions of the covered words are unchanged. `form`
  // indexes the threaded Run loop's handler table (0 = generic slow path);
  // it is derived from the decode at refill time.
  struct Superblock;

  struct PredecodedInsn {
    DecodedInsn insn;
    std::array<Word, 2> ext{};
    std::uint8_t form = 0;
    // Resolved handler label inside RunThreaded, filled lazily on first
    // threaded dispatch (label addresses are stable for the process
    // lifetime). Cleared on every refill; purely derived from `form`.
    const void* handler = nullptr;
    std::uint64_t version = 0;       // page version of the insn word; 0 = empty
    std::uint64_t version_last = 0;  // page version of the last covered word
    // Superblock anchored at this entry (owner: superblocks_). While set,
    // `form` is kFormSbEnter and the original form lives in sb->orig_form.
    Superblock* sb = nullptr;
    // Taken-branch-target heat; a superblock build triggers when it crosses
    // kSuperblockHeatThreshold. Survives refills, reset on invalidation.
    std::uint16_t heat = 0;
  };

  // One instruction of a superblock trace: the predecoded form plus the
  // virtual PC it was stitched at and, for branches, the index of the
  // predicted successor inside the trace (-1 = trace exit).
  struct SuperblockInsn {
    DecodedInsn insn;
    std::array<Word, 2> ext{};
    Word pc = 0;
    std::int32_t next_index = -1;
    const void* handler = nullptr;  // sb handler label, resolved on first entry
    std::uint8_t form = 0;
    bool may_write = false;  // memory-destination opcode: recheck versions after
    bool can_fault = false;  // touches data memory: needs event plumbing
  };

  struct Superblock {
    // Entry guard: the virtual-page mappings the trace was stitched through.
    // `limit` is the effective fetchable length (0 when the page was
    // unmapped — impossible at build time, kept for symmetry).
    struct PageGuard {
      std::uint32_t vpage = 0;
      PhysAddr base = 0;
      std::uint32_t limit = 0;
    };
    // Entry guard: version of every 64-word physical page covered by the
    // stitched instruction words. Checked on entry and after every
    // may_write instruction, replacing the per-step version/version_last
    // compares for the whole trace.
    struct VersionGuard {
      std::uint32_t index = 0;  // addr >> PhysicalMemory::kVersionPageShift
      std::uint64_t version = 0;
    };

    Word entry_pc = 0;
    CpuMode mode = CpuMode::kKernel;
    std::uint8_t orig_form = 0;  // entry's DirectForm before kFormSbEnter
    std::uint32_t slot = 0;      // index in superblocks_ (swap-erase fixup)
    PredecodedInsn* entry = nullptr;
    std::vector<SuperblockInsn> insns;
    std::vector<PageGuard> page_guards;
    std::vector<VersionGuard> version_guards;
  };

  static constexpr std::uint16_t kSuperblockHeatThreshold = 16;
  static constexpr std::size_t kSuperblockMaxInsns = 64;
  static constexpr std::size_t kSuperblockMaxVersionGuards = 16;
  static constexpr std::size_t kSuperblockMinInsns = 2;

  // Cache blocks are allocated lazily per touched code region so clones and
  // non-executing machines pay nothing.
  static constexpr int kIcacheBlockShift = 8;
  static constexpr std::size_t kIcacheBlockWords = std::size_t{1} << kIcacheBlockShift;
  struct IcacheBlock {
    std::array<PredecodedInsn, kIcacheBlockWords> entries{};
  };

  void HardwareVector(PhysAddr vector);
  void DispatchTrap(const TrapInfo& info);

  // The instruction-execution half of StepCpuPhase (no client work, no
  // interrupt was deliverable, not idle). Shared by StepCpuPhase and the
  // batched Run loop.
  StepEvent ExecuteInstructionPhase();

  // Applies a CPU event to machine state (halt/wait latches, trap dispatch)
  // and renders it as a step event.
  StepEvent ApplyCpuEvent(const CpuEvent& cpu_event);

  // Executes one instruction through the predecode cache, falling back to
  // the generic fetch-decode-execute path whenever the fast-path
  // preconditions do not hold (cache disabled, fetch would fault or touch
  // device space, instruction crosses a page, invalid opcode).
  CpuEvent ExecuteCpu();

  // The hot core of ExecuteCpu against an already-constructed bus: inlined
  // into the batched Run loop. Cache misses and every fallback are
  // out-of-line in ExecuteCpuMiss / the generic interpreter.
  //
  // `st` is the architectural register state the instruction executes
  // against. StepCpuPhase passes cpu_ itself (kLocalState = false). The
  // batched Run loop instead keeps a function-local copy whose address
  // never escapes — so the compiler can prove guest memory stores do not
  // alias it and keep PC/PSW live across iterations — and kLocalState = true
  // brackets every out-of-line slow path with a cpu_ commit/reload.
  // Forced inline: if this stayed out of line, &st would escape into the
  // call and the aliasing argument above would not hold.
  template <bool kLocalState>
  __attribute__((always_inline)) CpuEvent ExecuteCpuT(MachineBus& bus, CpuState& st);
  CpuEvent ExecuteCpuMiss(MachineBus& bus, PredecodedInsn& entry, PhysAddr phys,
                          std::uint32_t offset, std::uint32_t limit);

  // The direct-threaded batched loop behind Run() when no client, no devices
  // and the predecode cache are in play: every predecoded opcode dispatches
  // to its own handler (own indirect-branch site) and PC/PSW live in locals
  // across steps. Step-for-step identical to repeated Step().
  std::size_t RunThreaded(std::size_t max_steps);

  // Statically walks the predicted path from `entry_pc` (a hot taken-branch
  // target) through the live mapping and memory, and installs a superblock
  // on `entry` if at least kSuperblockMinInsns direct-form instructions can
  // be stitched. On failure the entry is left untouched (heat wraps and
  // retries eventually).
  void BuildSuperblockAt(Word entry_pc, CpuMode mode, PredecodedInsn& entry);
  // Tears one superblock down: restores the anchor entry's original form and
  // swap-erases the registry slot. The Superblock is freed — callers must
  // not touch it afterwards.
  void InvalidateSuperblock(Superblock* sb);
  void InvalidateAllSuperblocks();

  IcacheBlock& EnsureIcacheBlock(PhysAddr phys);

  MachineConfig config_;
  PhysicalMemory memory_;
  Mmu mmu_;
  CpuState cpu_;
  std::vector<std::unique_ptr<Device>> devices_;
  MachineClient* client_ = nullptr;
  bool halted_ = false;
  bool waiting_ = false;
  Tick tick_ = 0;

  std::vector<std::unique_ptr<IcacheBlock>> icache_;
  bool predecode_enabled_ = true;
  std::uint64_t predecode_hits_ = 0;
  std::uint64_t predecode_misses_ = 0;

  std::vector<std::unique_ptr<Superblock>> superblocks_;
  bool superblock_enabled_ = true;
  std::uint64_t superblock_builds_ = 0;
  std::uint64_t superblock_side_exits_ = 0;
  std::uint64_t superblock_invalidations_ = 0;
};

}  // namespace sep

#endif  // SRC_MACHINE_MACHINE_H_
