// Concrete SM-11 devices.
//
//   SerialLine  - a DL11-style asynchronous line unit (receive + transmit),
//                 the workhorse for inter-machine communication lines.
//   LineClock   - a KW11-style line-time clock that interrupts periodically.
//   LinePrinter - an LP11-style printer: one character at a time, slow.
//   CryptoUnit  - the SNFE's trusted cryptographic device: a keyed stream
//                 cipher exposed through data-in/data-out registers.
//
// Register maps are documented per class. All devices follow the DEC
// convention: a control/status register (CSR) whose bit 7 is DONE/READY and
// bit 6 is INTERRUPT-ENABLE, plus data buffer registers.
#ifndef SRC_MACHINE_DEVICES_H_
#define SRC_MACHINE_DEVICES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/machine/device.h"

namespace sep {

inline constexpr Word kCsrDone = 0x0080;   // bit 7
inline constexpr Word kCsrIe = 0x0040;     // bit 6

// DL11-style serial line unit.
//
// Registers:
//   0  RCSR  receive status  (DONE: character available, IE)
//   1  RBUF  receive buffer  (reading clears DONE)
//   2  XCSR  transmit status (DONE: transmitter idle, IE)
//   3  XBUF  transmit buffer (writing starts transmission when idle)
//
// A received word moves from the environment queue into RBUF when DONE is
// clear; transmission takes `transmit_delay` steps per word.
class SerialLine : public Device {
 public:
  SerialLine(std::string name, int vector, int priority, int transmit_delay = 1);

  std::unique_ptr<Device> Clone() const override;
  Word ReadRegister(int offset) override;
  void WriteRegister(int offset, Word value) override;
  void Step() override;
  std::vector<Word> SnapshotState() const override;
  bool RestoreState(std::span<const Word> state) override;
  void Perturb(Rng& rng) override;

 private:
  int transmit_delay_;
  Word rcsr_ = 0;
  Word rbuf_ = 0;
  Word xcsr_ = kCsrDone;  // transmitter idle at reset
  Word xbuf_ = 0;
  int tx_countdown_ = 0;
};

// KW11-style line clock.
//
// Registers:
//   0  LKS  status (DONE set every `interval` steps; IE; writing clears DONE)
class LineClock : public Device {
 public:
  LineClock(std::string name, int vector, int priority, int interval);

  std::unique_ptr<Device> Clone() const override;
  Word ReadRegister(int offset) override;
  void WriteRegister(int offset, Word value) override;
  void Step() override;
  std::vector<Word> SnapshotState() const override;
  bool RestoreState(std::span<const Word> state) override;
  void Perturb(Rng& rng) override;

 private:
  int interval_;
  Word lks_ = 0;
  int countdown_;
};

// LP11-style line printer.
//
// Registers:
//   0  LPS  status (READY when able to accept a character, IE)
//   1  LPB  buffer (writing prints the low byte after `print_delay` steps)
//
// Printed characters appear on the environment output queue.
class LinePrinter : public Device {
 public:
  LinePrinter(std::string name, int vector, int priority, int print_delay = 4);

  std::unique_ptr<Device> Clone() const override;
  Word ReadRegister(int offset) override;
  void WriteRegister(int offset, Word value) override;
  void Step() override;
  std::vector<Word> SnapshotState() const override;
  bool RestoreState(std::span<const Word> state) override;
  void Perturb(Rng& rng) override;

 private:
  int print_delay_;
  Word lps_ = kCsrDone;
  Word pending_char_ = 0;
  int countdown_ = 0;
};

// The SNFE's trusted cryptographic unit.
//
// Registers:
//   0  CCSR  status (DONE: ciphertext ready, IE; bit 0 selects direction:
//            0 = encrypt, 1 = decrypt — the stream cipher is symmetric so
//            the bit only documents intent)
//   1  CDATA_IN  write a cleartext word to start an operation
//   2  CDATA_OUT read the transformed word (clears DONE)
//
// The transformation is a keyed word-stream cipher: out = in XOR ks(key, n)
// where n counts operations. The device is *trusted hardware* in the paper's
// design: its security is assumed, not verified, and the checker treats its
// key as device-internal state invisible to every regime except through the
// register interface.
class CryptoUnit : public Device {
 public:
  CryptoUnit(std::string name, int vector, int priority, std::uint64_t key, int latency = 2);

  std::unique_ptr<Device> Clone() const override;
  Word ReadRegister(int offset) override;
  void WriteRegister(int offset, Word value) override;
  void Step() override;
  std::vector<Word> SnapshotState() const override;
  bool RestoreState(std::span<const Word> state) override;
  void Perturb(Rng& rng) override;

  // The keystream, exposed so tests and the SNFE receiver can model the
  // peer crypto that shares the key.
  static Word Keystream(std::uint64_t key, std::uint64_t n);

 private:
  std::uint64_t key_;
  int latency_;
  Word ccsr_ = 0;
  Word data_out_ = 0;
  Word pending_in_ = 0;
  bool busy_ = false;
  int countdown_ = 0;
  std::uint64_t op_count_ = 0;
};

}  // namespace sep

#endif  // SRC_MACHINE_DEVICES_H_
