// The SM-11 CPU: register state and the instruction interpreter.
//
// The interpreter is written against an abstract Bus so it can be unit
// tested against a flat memory and reused unchanged inside the full Machine
// (where the bus applies MMU translation and routes I/O-page addresses to
// device registers).
//
// Faults (illegal instruction, bus/MMU fault) abort the instruction with no
// architectural side effects: the interpreter works on a scratch copy of the
// register state and commits it only when the instruction completes. This
// gives the kernel a precise machine state to inspect on every abort, which
// the Proof-of-Separability conditions rely on.
#ifndef SRC_MACHINE_CPU_H_
#define SRC_MACHINE_CPU_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/hash.h"
#include "src/base/types.h"
#include "src/machine/isa.h"
#include "src/machine/mmu.h"

namespace sep {

// Processor status word layout:
//   [0] C  [1] V  [2] Z  [3] N   condition codes
//   [7:5]  interrupt priority (devices at priority <= this are masked)
//   [15]   mode: 0 kernel, 1 user
class Psw {
 public:
  Psw() = default;
  explicit Psw(Word bits) : bits_(bits) {}

  Word bits() const { return bits_; }
  void set_bits(Word bits) { bits_ = bits; }

  bool c() const { return bits_ & 0x0001; }
  bool v() const { return bits_ & 0x0002; }
  bool z() const { return bits_ & 0x0004; }
  bool n() const { return bits_ & 0x0008; }

  void SetFlags(bool n, bool z, bool v, bool c) {
    bits_ = static_cast<Word>((bits_ & ~0x000F) | (n ? 0x8 : 0) | (z ? 0x4 : 0) | (v ? 0x2 : 0) |
                              (c ? 0x1 : 0));
  }
  void SetNZ(Word result, bool v, bool c) {
    SetFlags((result & 0x8000) != 0, result == 0, v, c);
  }

  int priority() const { return (bits_ >> 5) & 0x7; }
  void set_priority(int p) {
    bits_ = static_cast<Word>((bits_ & ~0x00E0) | ((p & 0x7) << 5));
  }

  CpuMode mode() const { return (bits_ & 0x8000) ? CpuMode::kUser : CpuMode::kKernel; }
  void set_mode(CpuMode mode) {
    if (mode == CpuMode::kUser) {
      bits_ |= 0x8000;
    } else {
      bits_ &= 0x7FFF;
    }
  }

  bool operator==(const Psw& other) const = default;

 private:
  Word bits_ = 0;
};

struct CpuState {
  std::array<Word, 8> regs{};
  Psw psw;

  Word pc() const { return regs[kPc]; }
  void set_pc(Word pc) { regs[kPc] = pc; }
  Word sp() const { return regs[kSp]; }
  void set_sp(Word sp) { regs[kSp] = sp; }

  void AppendHash(Hasher& hasher) const {
    for (Word r : regs) {
      hasher.Mix(r);
    }
    hasher.Mix(psw.bits());
  }

  bool operator==(const CpuState& other) const = default;
};

// Memory as the CPU sees it (post-MMU). Read/Write return false on fault;
// the fault description is left in `last_fault`.
class Bus {
 public:
  virtual ~Bus() = default;
  virtual bool Read(VirtAddr addr, AccessKind kind, Word* out) = 0;
  virtual bool Write(VirtAddr addr, Word value) = 0;
};

enum class CpuEventKind : std::uint8_t {
  kOk,                  // instruction retired normally
  kHalt,                // HALT in kernel mode
  kWait,                // WAIT: idle until next interrupt
  kIllegalInstruction,  // bad opcode, privileged op in user mode, bad operand
  kBusFault,            // MMU abort during the instruction
  kTrap,                // TRAP instruction (kernel call); code in trap_code
};

struct CpuEvent {
  CpuEventKind kind = CpuEventKind::kOk;
  std::uint16_t trap_code = 0;
  VirtAddr fault_addr = 0;  // for kBusFault
};

// Executes exactly one instruction. On kOk/kHalt/kWait/kTrap the state is
// committed (PC past the instruction); on faults the state is untouched.
CpuEvent ExecuteOne(CpuState& state, Bus& bus);

}  // namespace sep

#endif  // SRC_MACHINE_CPU_H_
