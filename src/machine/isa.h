// The SM-11 instruction set architecture.
//
// The SM-11 is a 16-bit word-addressed machine inspired by the PDP-11/34 on
// which the SUE separation kernel ran. It is deliberately *not* a cycle- or
// encoding-accurate PDP-11: the reproduction needs a machine with the same
// security-relevant anatomy (two processor modes, per-mode memory mapping,
// memory-mapped device registers, vectored interrupts, trap instruction for
// kernel calls, and no DMA), not binary compatibility.
//
// Encoding
// --------
// Every instruction is one word, optionally followed by up to two extension
// words (source first, then destination).
//
//   [15:10] opcode
//   [ 9: 8] source addressing mode   (two-operand forms)
//   [ 7: 5] source register
//   [ 4: 3] destination addressing mode
//   [ 2: 0] destination register
//
// Branch instructions carry a signed 8-bit word offset in [7:0].
// TRAP carries a 10-bit kernel-call code in [9:0].
//
// Addressing modes:
//   0 kReg         operand is the register itself
//   1 kRegDeferred operand is the word addressed by the register
//   2 kImmediate   (source) extension word is the operand value;
//     kAbsolute    (destination) extension word is the operand address
//   3 kIndexed     extension word + register = operand address
#ifndef SRC_MACHINE_ISA_H_
#define SRC_MACHINE_ISA_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/base/types.h"

namespace sep {

enum class Opcode : std::uint8_t {
  // Zero-operand.
  kHalt = 0x00,
  kNop = 0x01,
  kWait = 0x02,
  kRti = 0x03,
  kRts = 0x04,
  kTrap = 0x05,  // 10-bit code in [9:0]

  // Two-operand.
  kMov = 0x10,
  kAdd = 0x11,
  kSub = 0x12,
  kCmp = 0x13,  // src - dst, condition codes only
  kBit = 0x14,  // src & dst, condition codes only
  kBic = 0x15,  // dst &= ~src
  kBis = 0x16,  // dst |= src
  kXor = 0x17,

  // One-operand (destination field only).
  kClr = 0x20,
  kInc = 0x21,
  kDec = 0x22,
  kNeg = 0x23,
  kCom = 0x24,
  kTst = 0x25,
  kAsr = 0x26,
  kAsl = 0x27,
  kJmp = 0x28,
  kJsr = 0x29,

  // Branches (signed 8-bit word offset in [7:0]).
  kBr = 0x30,
  kBeq = 0x31,
  kBne = 0x32,
  kBmi = 0x33,
  kBpl = 0x34,
  kBcs = 0x35,
  kBcc = 0x36,
  kBvs = 0x37,
  kBvc = 0x38,
  kBlt = 0x39,
  kBge = 0x3A,
  kBgt = 0x3B,
  kBle = 0x3C,
};

enum class AddrMode : std::uint8_t {
  kReg = 0,
  kRegDeferred = 1,
  kImmediate = 2,  // kAbsolute when used as a destination
  kIndexed = 3,
};

// Register numbers. R6 is the stack pointer, R7 the program counter.
inline constexpr int kSp = 6;
inline constexpr int kPc = 7;

struct OperandSpec {
  AddrMode mode = AddrMode::kReg;
  std::uint8_t reg = 0;

  bool NeedsExtension() const {
    return mode == AddrMode::kImmediate || mode == AddrMode::kIndexed;
  }
};

struct DecodedInsn {
  Opcode opcode = Opcode::kNop;
  OperandSpec src;
  OperandSpec dst;
  std::int16_t branch_offset = 0;  // words, for branch opcodes
  std::uint16_t trap_code = 0;     // for kTrap
  int length = 1;                  // total words including extensions
};

enum class OperandCount : std::uint8_t { kZero, kOne, kTwo, kBranch, kTrap };

// Classification of an opcode's operand shape; nullopt for invalid opcodes.
std::optional<OperandCount> OpcodeShape(std::uint8_t opcode_bits);

// Decodes an instruction word (without reading extension words; length is
// still filled in from the operand specs). Returns nullopt on an invalid
// opcode, which the CPU turns into an illegal-instruction trap.
std::optional<DecodedInsn> Decode(Word insn);

// Instruction assembly helpers used by the assembler back end and by tests
// that build code words directly.
Word EncodeZeroOp(Opcode op);
Word EncodeTrap(std::uint16_t code);
Word EncodeBranch(Opcode op, std::int16_t word_offset);
Word EncodeOneOp(Opcode op, OperandSpec dst);
Word EncodeTwoOp(Opcode op, OperandSpec src, OperandSpec dst);

const char* OpcodeName(Opcode op);

// Renders a decoded instruction (extension-word values must be supplied by
// the caller since they live in memory after the instruction word).
std::string Disassemble(const DecodedInsn& insn, Word ext1, Word ext2);

}  // namespace sep

#endif  // SRC_MACHINE_ISA_H_
