#include "src/machine/isa.h"

#include "src/base/strings.h"

namespace sep {

namespace {

bool IsZeroOp(std::uint8_t op) { return op <= 0x04; }
bool IsTwoOp(std::uint8_t op) { return op >= 0x10 && op <= 0x17; }
bool IsOneOp(std::uint8_t op) { return op >= 0x20 && op <= 0x29; }
bool IsBranch(std::uint8_t op) { return op >= 0x30 && op <= 0x3C; }

}  // namespace

std::optional<OperandCount> OpcodeShape(std::uint8_t op) {
  if (IsZeroOp(op)) {
    return OperandCount::kZero;
  }
  if (op == 0x05) {
    return OperandCount::kTrap;
  }
  if (IsTwoOp(op)) {
    return OperandCount::kTwo;
  }
  if (IsOneOp(op)) {
    return OperandCount::kOne;
  }
  if (IsBranch(op)) {
    return OperandCount::kBranch;
  }
  return std::nullopt;
}

std::optional<DecodedInsn> Decode(Word insn) {
  const std::uint8_t op = static_cast<std::uint8_t>(insn >> 10);
  std::optional<OperandCount> shape = OpcodeShape(op);
  if (!shape.has_value()) {
    return std::nullopt;
  }

  DecodedInsn out;
  out.opcode = static_cast<Opcode>(op);
  switch (*shape) {
    case OperandCount::kZero:
      break;
    case OperandCount::kTrap:
      out.trap_code = insn & 0x03FF;
      break;
    case OperandCount::kBranch:
      out.branch_offset = static_cast<std::int16_t>(static_cast<std::int8_t>(insn & 0xFF));
      break;
    case OperandCount::kOne:
      out.dst.mode = static_cast<AddrMode>((insn >> 3) & 0x3);
      out.dst.reg = insn & 0x7;
      if (out.dst.NeedsExtension()) {
        ++out.length;
      }
      break;
    case OperandCount::kTwo:
      out.src.mode = static_cast<AddrMode>((insn >> 8) & 0x3);
      out.src.reg = (insn >> 5) & 0x7;
      out.dst.mode = static_cast<AddrMode>((insn >> 3) & 0x3);
      out.dst.reg = insn & 0x7;
      if (out.src.NeedsExtension()) {
        ++out.length;
      }
      if (out.dst.NeedsExtension()) {
        ++out.length;
      }
      break;
  }
  return out;
}

Word EncodeZeroOp(Opcode op) { return static_cast<Word>(static_cast<Word>(op) << 10); }

Word EncodeTrap(std::uint16_t code) {
  return static_cast<Word>((static_cast<Word>(Opcode::kTrap) << 10) | (code & 0x03FF));
}

Word EncodeBranch(Opcode op, std::int16_t word_offset) {
  return static_cast<Word>((static_cast<Word>(op) << 10) |
                           (static_cast<Word>(word_offset) & 0xFF));
}

Word EncodeOneOp(Opcode op, OperandSpec dst) {
  return static_cast<Word>((static_cast<Word>(op) << 10) |
                           ((static_cast<Word>(dst.mode) & 0x3) << 3) | (dst.reg & 0x7));
}

Word EncodeTwoOp(Opcode op, OperandSpec src, OperandSpec dst) {
  return static_cast<Word>((static_cast<Word>(op) << 10) |
                           ((static_cast<Word>(src.mode) & 0x3) << 8) |
                           ((static_cast<Word>(src.reg) & 0x7) << 5) |
                           ((static_cast<Word>(dst.mode) & 0x3) << 3) | (dst.reg & 0x7));
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHalt:
      return "HALT";
    case Opcode::kNop:
      return "NOP";
    case Opcode::kWait:
      return "WAIT";
    case Opcode::kRti:
      return "RTI";
    case Opcode::kRts:
      return "RTS";
    case Opcode::kTrap:
      return "TRAP";
    case Opcode::kMov:
      return "MOV";
    case Opcode::kAdd:
      return "ADD";
    case Opcode::kSub:
      return "SUB";
    case Opcode::kCmp:
      return "CMP";
    case Opcode::kBit:
      return "BIT";
    case Opcode::kBic:
      return "BIC";
    case Opcode::kBis:
      return "BIS";
    case Opcode::kXor:
      return "XOR";
    case Opcode::kClr:
      return "CLR";
    case Opcode::kInc:
      return "INC";
    case Opcode::kDec:
      return "DEC";
    case Opcode::kNeg:
      return "NEG";
    case Opcode::kCom:
      return "COM";
    case Opcode::kTst:
      return "TST";
    case Opcode::kAsr:
      return "ASR";
    case Opcode::kAsl:
      return "ASL";
    case Opcode::kJmp:
      return "JMP";
    case Opcode::kJsr:
      return "JSR";
    case Opcode::kBr:
      return "BR";
    case Opcode::kBeq:
      return "BEQ";
    case Opcode::kBne:
      return "BNE";
    case Opcode::kBmi:
      return "BMI";
    case Opcode::kBpl:
      return "BPL";
    case Opcode::kBcs:
      return "BCS";
    case Opcode::kBcc:
      return "BCC";
    case Opcode::kBvs:
      return "BVS";
    case Opcode::kBvc:
      return "BVC";
    case Opcode::kBlt:
      return "BLT";
    case Opcode::kBge:
      return "BGE";
    case Opcode::kBgt:
      return "BGT";
    case Opcode::kBle:
      return "BLE";
  }
  return "???";
}

namespace {

std::string OperandText(const OperandSpec& spec, Word ext, bool is_dst) {
  switch (spec.mode) {
    case AddrMode::kReg:
      return Format("R%d", spec.reg);
    case AddrMode::kRegDeferred:
      return Format("(R%d)", spec.reg);
    case AddrMode::kImmediate:
      return is_dst ? Format("@%s", Octal(ext).c_str()) : Format("#%s", Octal(ext).c_str());
    case AddrMode::kIndexed:
      return Format("%s(R%d)", Octal(ext).c_str(), spec.reg);
  }
  return "?";
}

}  // namespace

std::string Disassemble(const DecodedInsn& insn, Word ext1, Word ext2) {
  std::optional<OperandCount> shape = OpcodeShape(static_cast<std::uint8_t>(insn.opcode));
  if (!shape.has_value()) {
    return "???";
  }
  switch (*shape) {
    case OperandCount::kZero:
      return OpcodeName(insn.opcode);
    case OperandCount::kTrap:
      return Format("TRAP %u", insn.trap_code);
    case OperandCount::kBranch:
      return Format("%s %+d", OpcodeName(insn.opcode), insn.branch_offset);
    case OperandCount::kOne:
      return std::string(OpcodeName(insn.opcode)) + " " + OperandText(insn.dst, ext1, true);
    case OperandCount::kTwo: {
      Word dst_ext = insn.src.NeedsExtension() ? ext2 : ext1;
      return std::string(OpcodeName(insn.opcode)) + " " + OperandText(insn.src, ext1, false) +
             ", " + OperandText(insn.dst, dst_ext, true);
    }
  }
  return "???";
}

}  // namespace sep
