// A fault-injecting decorator for machine devices.
//
// Real hardware stalls, raises spurious interrupts, and returns flipped bits
// from its registers. FaultyDevice wraps any Device and injects exactly
// those failure modes on a seeded, deterministic schedule, so that kernel
// and driver robustness can be exercised reproducibly:
//
//   * stall: the inner device loses its activity slot this step (its
//     transmit countdowns, clock ticks etc. simply do not advance);
//   * spurious interrupt: the wrapper raises an interrupt with no cause in
//     the inner device — the owning regime's handler must cope with a DONE
//     bit that is not set;
//   * read bit-flip: a register read returns the inner value with one bit
//     inverted (the stored device state is NOT modified — the flip is on
//     the bus, as transient hardware noise would be).
//
// The decorator preserves the device framework's security discipline: the
// wrapper has the same owner, vector and register window as the inner
// device, so a faulty device can still only be observed by its owning
// regime. Faults never move information across regimes — they only degrade
// the owner's own view, which is precisely the paper's fault model for
// trusted components ("degrade gracefully, never widen a channel").
//
// Note on SnapshotState(): the snapshot covers the inner device plus the
// wrapper's fault counters but not the fault schedule's RNG state, so two
// FaultyDevices that differ only in future fault timing compare equal. The
// Proof-of-Separability checker should be run on un-decorated devices; the
// decorator is for robustness testing (chaos_run, chaos_test).
#ifndef SRC_MACHINE_FAULTY_DEVICE_H_
#define SRC_MACHINE_FAULTY_DEVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/machine/device.h"

namespace sep {

struct DeviceFaultSpec {
  int stall_percent = 0;         // chance per step the inner device stalls
  int spurious_irq_percent = 0;  // chance per step of a causeless interrupt
  int read_flip_percent = 0;     // chance per register read of a bit flip
};

struct DeviceFaultCounters {
  std::uint64_t stalls = 0;
  std::uint64_t spurious_interrupts = 0;
  std::uint64_t read_flips = 0;
};

class FaultyDevice : public Device {
 public:
  FaultyDevice(std::unique_ptr<Device> inner, DeviceFaultSpec spec, std::uint64_t seed);

  std::unique_ptr<Device> Clone() const override;
  Word ReadRegister(int offset) override;
  void WriteRegister(int offset, Word value) override;
  void Step() override;
  std::vector<Word> SnapshotState() const override;
  void Perturb(Rng& rng) override;

  const DeviceFaultCounters& fault_counters() const { return counters_; }
  Device& inner() { return *inner_; }
  const Device& inner() const { return *inner_; }

 private:
  FaultyDevice(const FaultyDevice& other);  // for Clone

  std::unique_ptr<Device> inner_;
  DeviceFaultSpec spec_;
  Rng rng_;
  DeviceFaultCounters counters_;
};

}  // namespace sep

#endif  // SRC_MACHINE_FAULTY_DEVICE_H_
