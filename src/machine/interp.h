// Internal templated core of the SM-11 interpreter.
//
// The interpreter logic lives here as templates over the bus type so that it
// can be instantiated twice with identical semantics:
//
//   * cpu.cpp instantiates ExecuteOneT<Bus> against the abstract Bus
//     interface — the stable public ExecuteOne() used by unit tests and any
//     caller with a custom bus;
//   * machine.cpp instantiates ExecuteOneT / ExecutePredecodedT with the
//     concrete (final) MachineBus, so every memory access in the hot path is
//     devirtualized and inlined.
//
// ExecutePredecodedT additionally consumes a DecodedInsn and its extension
// words from the machine's predecode cache instead of fetching and decoding
// through the bus. The PC bookkeeping is kept bit-for-bit identical to the
// fetching path: the cached extension words are served by the same
// FetchWord() that would otherwise read the bus, including the PC increment,
// so PC-relative addressing and fault-free traces cannot diverge. The caller
// guarantees (by page-version and MMU-run validation) that the cached words
// equal memory content and that the fetches could not fault; everything else
// — operand resolution order, flag updates, fault stickiness — is the shared
// code below.
//
// This header is an implementation detail of src/machine; include cpu.h for
// the public interface.
#ifndef SRC_MACHINE_INTERP_H_
#define SRC_MACHINE_INTERP_H_

#include <optional>

#include "src/machine/cpu.h"
#include "src/machine/isa.h"

namespace sep {
namespace interp {

// Where an operand lives after address resolution.
enum class Loc : std::uint8_t { kRegister, kMemory, kImmediate };

struct Operand {
  Loc loc = Loc::kRegister;
  int reg = 0;         // kRegister
  VirtAddr addr = 0;   // kMemory
  Word imm = 0;        // kImmediate
};

template <typename BusT>
struct Ctx {
  CpuState st;  // scratch copy, committed on success
  BusT& bus;
  CpuEvent event;  // sticky fault record
  // Predecoded extension-word stream; when non-null, FetchWord serves from
  // here (still advancing PC) instead of reading the bus.
  const Word* ext = nullptr;
  int ext_left = 0;

  bool failed() const { return event.kind != CpuEventKind::kOk; }

  void Fail(CpuEventKind kind, VirtAddr addr = 0) {
    if (!failed()) {
      event.kind = kind;
      event.fault_addr = addr;
    }
  }

  Word FetchWord() {
    if (ext_left > 0) {
      --ext_left;
      st.set_pc(static_cast<Word>(st.pc() + 1));
      return *ext++;
    }
    Word w = 0;
    if (!bus.Read(st.pc(), AccessKind::kReadInstruction, &w)) {
      Fail(CpuEventKind::kBusFault, st.pc());
      return 0;
    }
    st.set_pc(static_cast<Word>(st.pc() + 1));
    return w;
  }

  Word ReadMem(VirtAddr addr) {
    Word w = 0;
    if (!bus.Read(addr, AccessKind::kReadData, &w)) {
      Fail(CpuEventKind::kBusFault, addr);
      return 0;
    }
    return w;
  }

  void WriteMem(VirtAddr addr, Word value) {
    if (!bus.Write(addr, value)) {
      Fail(CpuEventKind::kBusFault, addr);
    }
  }

  void Push(Word value) {
    st.set_sp(static_cast<Word>(st.sp() - 1));
    WriteMem(st.sp(), value);
  }

  Word Pop() {
    Word value = ReadMem(st.sp());
    st.set_sp(static_cast<Word>(st.sp() + 1));
    return value;
  }

  // Resolves an operand spec, fetching the extension word if needed.
  Operand Resolve(const OperandSpec& spec, bool is_dst) {
    Operand op;
    switch (spec.mode) {
      case AddrMode::kReg:
        op.loc = Loc::kRegister;
        op.reg = spec.reg;
        return op;
      case AddrMode::kRegDeferred:
        op.loc = Loc::kMemory;
        op.addr = st.regs[spec.reg];
        return op;
      case AddrMode::kImmediate: {
        Word ext_word = FetchWord();
        if (is_dst) {
          op.loc = Loc::kMemory;  // absolute addressing
          op.addr = ext_word;
        } else {
          op.loc = Loc::kImmediate;
          op.imm = ext_word;
        }
        return op;
      }
      case AddrMode::kIndexed: {
        Word ext_word = FetchWord();
        op.loc = Loc::kMemory;
        op.addr = static_cast<Word>(ext_word + st.regs[spec.reg]);
        return op;
      }
    }
    return op;
  }

  Word ReadOperand(const Operand& op) {
    switch (op.loc) {
      case Loc::kRegister:
        return st.regs[op.reg];
      case Loc::kMemory:
        return ReadMem(op.addr);
      case Loc::kImmediate:
        return op.imm;
    }
    return 0;
  }

  void WriteOperand(const Operand& op, Word value) {
    switch (op.loc) {
      case Loc::kRegister:
        st.regs[op.reg] = value;
        return;
      case Loc::kMemory:
        WriteMem(op.addr, value);
        return;
      case Loc::kImmediate:
        Fail(CpuEventKind::kIllegalInstruction);
        return;
    }
  }

  // Effective address for control transfer; register mode is illegal
  // (matching the PDP-11's treatment of JMP Rn).
  std::optional<VirtAddr> JumpTarget(const OperandSpec& spec) {
    switch (spec.mode) {
      case AddrMode::kReg:
        Fail(CpuEventKind::kIllegalInstruction);
        return std::nullopt;
      case AddrMode::kRegDeferred:
        return st.regs[spec.reg];
      case AddrMode::kImmediate:
        return FetchWord();
      case AddrMode::kIndexed: {
        Word ext_word = FetchWord();
        return static_cast<Word>(ext_word + st.regs[spec.reg]);
      }
    }
    return std::nullopt;
  }
};

inline bool SignedOverflowAdd(Word a, Word b, Word r) {
  return ((a ^ r) & (b ^ r) & 0x8000) != 0;
}

inline bool SignedOverflowSub(Word a, Word b, Word r) {
  // r = a - b
  return ((a ^ b) & (a ^ r) & 0x8000) != 0;
}

template <typename BusT>
void ExecTwoOp(Ctx<BusT>& ctx, const DecodedInsn& insn) {
  Operand src = ctx.Resolve(insn.src, /*is_dst=*/false);
  if (ctx.failed()) {
    return;
  }
  Operand dst = ctx.Resolve(insn.dst, /*is_dst=*/true);
  if (ctx.failed()) {
    return;
  }
  Word s = ctx.ReadOperand(src);
  if (ctx.failed()) {
    return;
  }

  Psw& psw = ctx.st.psw;
  switch (insn.opcode) {
    case Opcode::kMov:
      ctx.WriteOperand(dst, s);
      psw.SetNZ(s, false, psw.c());
      return;
    case Opcode::kAdd: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d + s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, SignedOverflowAdd(d, s, r), r < d);
      return;
    }
    case Opcode::kSub: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d - s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, SignedOverflowSub(d, s, r), d < s);
      return;
    }
    case Opcode::kCmp: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(s - d);
      psw.SetNZ(r, SignedOverflowSub(s, d, r), s < d);
      return;
    }
    case Opcode::kBit: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(s & d);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kBic: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d & static_cast<Word>(~s));
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kBis: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d | s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kXor: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d ^ s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    default:
      ctx.Fail(CpuEventKind::kIllegalInstruction);
      return;
  }
}

template <typename BusT>
void ExecOneOp(Ctx<BusT>& ctx, const DecodedInsn& insn) {
  Psw& psw = ctx.st.psw;

  if (insn.opcode == Opcode::kJmp || insn.opcode == Opcode::kJsr) {
    std::optional<VirtAddr> target = ctx.JumpTarget(insn.dst);
    if (ctx.failed() || !target.has_value()) {
      return;
    }
    if (insn.opcode == Opcode::kJsr) {
      ctx.Push(ctx.st.pc());
      if (ctx.failed()) {
        return;
      }
    }
    ctx.st.set_pc(static_cast<Word>(*target));
    return;
  }

  Operand dst = ctx.Resolve(insn.dst, /*is_dst=*/true);
  if (ctx.failed()) {
    return;
  }

  switch (insn.opcode) {
    case Opcode::kClr:
      ctx.WriteOperand(dst, 0);
      psw.SetFlags(false, true, false, false);
      return;
    case Opcode::kTst: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      psw.SetNZ(d, false, false);
      return;
    }
    case Opcode::kInc: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d + 1);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, r == 0x8000, psw.c());
      return;
    }
    case Opcode::kDec: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d - 1);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, d == 0x8000, psw.c());
      return;
    }
    case Opcode::kNeg: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(0 - d);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, r == 0x8000, r != 0);
      return;
    }
    case Opcode::kCom: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(~d);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, true);
      return;
    }
    case Opcode::kAsr: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      bool c = (d & 1) != 0;
      Word r = static_cast<Word>((d >> 1) | (d & 0x8000));
      ctx.WriteOperand(dst, r);
      bool n = (r & 0x8000) != 0;
      psw.SetFlags(n, r == 0, n != c, c);
      return;
    }
    case Opcode::kAsl: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      bool c = (d & 0x8000) != 0;
      Word r = static_cast<Word>(d << 1);
      ctx.WriteOperand(dst, r);
      bool n = (r & 0x8000) != 0;
      psw.SetFlags(n, r == 0, n != c, c);
      return;
    }
    default:
      ctx.Fail(CpuEventKind::kIllegalInstruction);
      return;
  }
}

inline bool BranchTaken(Opcode op, const Psw& psw) {
  const bool n = psw.n();
  const bool z = psw.z();
  const bool v = psw.v();
  const bool c = psw.c();
  switch (op) {
    case Opcode::kBr:
      return true;
    case Opcode::kBeq:
      return z;
    case Opcode::kBne:
      return !z;
    case Opcode::kBmi:
      return n;
    case Opcode::kBpl:
      return !n;
    case Opcode::kBcs:
      return c;
    case Opcode::kBcc:
      return !c;
    case Opcode::kBvs:
      return v;
    case Opcode::kBvc:
      return !v;
    case Opcode::kBlt:
      return n != v;
    case Opcode::kBge:
      return n == v;
    case Opcode::kBgt:
      return !z && (n == v);
    case Opcode::kBle:
      return z || (n != v);
    default:
      return false;
  }
}

// True when executing `insn` can store to memory: a writing opcode whose
// destination operand is memory-addressed. The machine's superblock layer
// rechecks covered-page versions after exactly these instructions, which is
// what makes hoisting the per-step version compares to trace entry sound
// against self-modifying code (see machine.cpp).
inline bool MayWriteMemory(const DecodedInsn& insn) {
  switch (insn.opcode) {
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kBic:
    case Opcode::kBis:
    case Opcode::kXor:
    case Opcode::kClr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kCom:
    case Opcode::kAsr:
    case Opcode::kAsl:
      return insn.dst.mode != AddrMode::kReg;
    default:
      // CMP/BIT/TST only read; branches, NOP and every generic-form opcode
      // are never stitched into a superblock.
      return false;
  }
}

// True when executing `insn` can touch data memory at all — any operand
// that Resolve() would place in Loc::kMemory (sources in deferred or
// indexed mode; destinations in anything but register mode, since an
// immediate-mode destination is absolute addressing). Instructions for
// which this is false cannot fault and cannot store: the superblock layer
// runs them through a lean in-trace handler with no event plumbing and no
// post-store version recheck (see machine.cpp).
inline bool MayTouchMemory(const DecodedInsn& insn) {
  switch (insn.opcode) {
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kCmp:
    case Opcode::kBit:
    case Opcode::kBic:
    case Opcode::kBis:
    case Opcode::kXor:
      if (insn.src.mode == AddrMode::kRegDeferred || insn.src.mode == AddrMode::kIndexed) {
        return true;
      }
      return insn.dst.mode != AddrMode::kReg;
    case Opcode::kClr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kCom:
    case Opcode::kTst:
    case Opcode::kAsr:
    case Opcode::kAsl:
      return insn.dst.mode != AddrMode::kReg;
    default:
      // Branches and NOP have no operands; every other opcode is generic
      // form and never stitched.
      return false;
  }
}

// Executes a decoded instruction whose instruction word has already been
// consumed (ctx.st PC points past it). Commits the scratch state unless the
// instruction aborted.
template <typename BusT>
CpuEvent RunDecoded(Ctx<BusT>& ctx, const DecodedInsn& insn, CpuState& state) {
  const bool user_mode = ctx.st.psw.mode() == CpuMode::kUser;

  switch (insn.opcode) {
    case Opcode::kHalt:
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      state = ctx.st;
      return {CpuEventKind::kHalt, 0, 0};
    case Opcode::kNop:
      break;
    case Opcode::kWait:
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      state = ctx.st;
      return {CpuEventKind::kWait, 0, 0};
    case Opcode::kRti: {
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      Word pc = ctx.Pop();
      Word psw = ctx.Pop();
      if (ctx.failed()) {
        return ctx.event;
      }
      ctx.st.set_pc(pc);
      ctx.st.psw.set_bits(psw);
      break;
    }
    case Opcode::kRts: {
      Word pc = ctx.Pop();
      if (ctx.failed()) {
        return ctx.event;
      }
      ctx.st.set_pc(pc);
      break;
    }
    case Opcode::kTrap:
      state = ctx.st;
      return {CpuEventKind::kTrap, insn.trap_code, 0};
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kCmp:
    case Opcode::kBit:
    case Opcode::kBic:
    case Opcode::kBis:
    case Opcode::kXor:
      ExecTwoOp(ctx, insn);
      break;
    case Opcode::kClr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kCom:
    case Opcode::kTst:
    case Opcode::kAsr:
    case Opcode::kAsl:
    case Opcode::kJmp:
    case Opcode::kJsr:
      ExecOneOp(ctx, insn);
      break;
    default:
      // Branches.
      if (BranchTaken(insn.opcode, ctx.st.psw)) {
        ctx.st.set_pc(static_cast<Word>(ctx.st.pc() + insn.branch_offset));
      }
      break;
  }

  if (ctx.failed()) {
    return ctx.event;
  }
  state = ctx.st;
  return ctx.event;
}

// Full fetch-decode-execute of one instruction through the bus.
template <typename BusT>
CpuEvent ExecuteOneT(CpuState& state, BusT& bus) {
  Ctx<BusT> ctx{state, bus, {}, nullptr, 0};

  Word insn_word = ctx.FetchWord();
  if (ctx.failed()) {
    return ctx.event;
  }

  std::optional<DecodedInsn> insn = Decode(insn_word);
  if (!insn.has_value()) {
    ctx.Fail(CpuEventKind::kIllegalInstruction);
    return ctx.event;
  }

  return RunDecoded(ctx, *insn, state);
}

// Executes a predecoded instruction: the caller supplies the decode and the
// insn.length - 1 extension words (cached values equal to memory content)
// and guarantees the corresponding fetches could not fault.
template <typename BusT>
CpuEvent ExecutePredecodedT(CpuState& state, BusT& bus, const DecodedInsn& insn,
                            const Word* ext) {
  Ctx<BusT> ctx{state, bus, {}, ext, insn.length - 1};
  ctx.st.set_pc(static_cast<Word>(ctx.st.pc() + 1));  // past the insn word
  return RunDecoded(ctx, insn, state);
}

// ---------------------------------------------------------------------------
// Direct execution of predecoded instructions.
//
// The common ALU / data-movement / branch subset is executed without the
// scratch-CpuState copy-in/copy-out of the Ctx path (whose store-to-load
// forwarding stalls dominate per-step cost): everything is computed in
// locals and committed only after the last access that can fault has
// succeeded — the same no-side-effects-on-abort guarantee, enforced by
// commit ordering rather than by a throwaway copy.
//
// DirectStepT<BusT, kOp> is the per-opcode core. The opcode is a template
// parameter so the machine's threaded Run loop can dispatch each predecoded
// opcode to its own handler (its own branch-predictor site) with the flag
// algebra constant-folded. PC and PSW are passed as plain locals the caller
// keeps in registers; `regs` points at the architectural register file.
// regs[kPc] is never read or written here: any operand addressed through
// the PC register bails out (return false) before any bus access, because
// its mid-instruction PC value is what the scratch path models.
//
// Returns true when the instruction was executed; *event then holds kOk or
// the fault — exactly as ExecutePredecodedT would report it — and on a
// fault regs/psw/pc are untouched. Returns false when the instruction needs
// the generic path. Operand resolution order, bus-access order and flag
// algebra mirror ExecTwoOp/ExecOneOp case by case so traces cannot diverge.

namespace detail {

template <Opcode kOp>
inline constexpr bool kIsBranch =
    kOp == Opcode::kBr || kOp == Opcode::kBeq || kOp == Opcode::kBne ||
    kOp == Opcode::kBmi || kOp == Opcode::kBpl || kOp == Opcode::kBcs ||
    kOp == Opcode::kBcc || kOp == Opcode::kBvs || kOp == Opcode::kBvc ||
    kOp == Opcode::kBlt || kOp == Opcode::kBge || kOp == Opcode::kBgt ||
    kOp == Opcode::kBle;

template <Opcode kOp>
inline constexpr bool kIsDirectTwoOp =
    kOp == Opcode::kMov || kOp == Opcode::kAdd || kOp == Opcode::kSub ||
    kOp == Opcode::kCmp || kOp == Opcode::kBit || kOp == Opcode::kBic ||
    kOp == Opcode::kBis || kOp == Opcode::kXor;

template <Opcode kOp>
inline constexpr bool kIsDirectOneOp =
    kOp == Opcode::kClr || kOp == Opcode::kInc || kOp == Opcode::kDec ||
    kOp == Opcode::kNeg || kOp == Opcode::kCom || kOp == Opcode::kTst ||
    kOp == Opcode::kAsr || kOp == Opcode::kAsl;

}  // namespace detail

template <typename BusT, Opcode kOp>
__attribute__((always_inline)) inline bool DirectStepT(Word* regs, Psw& psw, Word& pc,
                                                       BusT& bus, const DecodedInsn& insn,
                                                       const Word* ext, CpuEvent* event) {
  const Word pc_next = static_cast<Word>(pc + insn.length);

  if constexpr (kOp == Opcode::kNop) {
    pc = pc_next;
    return true;

  } else if constexpr (detail::kIsBranch<kOp>) {
    Word next = pc_next;
    if (BranchTaken(kOp, psw)) {
      next = static_cast<Word>(next + insn.branch_offset);
    }
    pc = next;
    return true;

  } else if constexpr (detail::kIsDirectTwoOp<kOp>) {
    // Resolve both operands (register/ext reads only, no bus traffic).
    Word s = 0;
    VirtAddr saddr = 0;
    bool smem = false;
    switch (insn.src.mode) {
      case AddrMode::kReg:
        if (insn.src.reg == kPc) return false;
        s = regs[insn.src.reg];
        break;
      case AddrMode::kRegDeferred:
        if (insn.src.reg == kPc) return false;
        smem = true;
        saddr = regs[insn.src.reg];
        break;
      case AddrMode::kImmediate:
        s = *ext++;
        break;
      case AddrMode::kIndexed:
        if (insn.src.reg == kPc) return false;
        smem = true;
        saddr = static_cast<Word>(*ext++ + regs[insn.src.reg]);
        break;
    }
    int dreg = 0;
    VirtAddr daddr = 0;
    bool dmem = false;
    switch (insn.dst.mode) {
      case AddrMode::kReg:
        if (insn.dst.reg == kPc) return false;
        dreg = insn.dst.reg;
        break;
      case AddrMode::kRegDeferred:
        if (insn.dst.reg == kPc) return false;
        dmem = true;
        daddr = regs[insn.dst.reg];
        break;
      case AddrMode::kImmediate:  // absolute as a destination
        dmem = true;
        daddr = *ext++;
        break;
      case AddrMode::kIndexed:
        if (insn.dst.reg == kPc) return false;
        dmem = true;
        daddr = static_cast<Word>(*ext++ + regs[insn.dst.reg]);
        break;
    }

    if (smem && !bus.Read(saddr, AccessKind::kReadData, &s)) {
      *event = {CpuEventKind::kBusFault, 0, saddr};
      return true;
    }
    Word d = 0;
    if constexpr (kOp != Opcode::kMov) {
      if (dmem) {
        if (!bus.Read(daddr, AccessKind::kReadData, &d)) {
          *event = {CpuEventKind::kBusFault, 0, daddr};
          return true;
        }
      } else {
        d = regs[dreg];
      }
    }

    Word r = 0;
    Psw flags = psw;
    constexpr bool kWrites = kOp != Opcode::kCmp && kOp != Opcode::kBit;
    if constexpr (kOp == Opcode::kMov) {
      r = s;
      flags.SetNZ(s, false, flags.c());
    } else if constexpr (kOp == Opcode::kAdd) {
      r = static_cast<Word>(d + s);
      flags.SetNZ(r, SignedOverflowAdd(d, s, r), r < d);
    } else if constexpr (kOp == Opcode::kSub) {
      r = static_cast<Word>(d - s);
      flags.SetNZ(r, SignedOverflowSub(d, s, r), d < s);
    } else if constexpr (kOp == Opcode::kCmp) {
      Word t = static_cast<Word>(s - d);
      flags.SetNZ(t, SignedOverflowSub(s, d, t), s < d);
    } else if constexpr (kOp == Opcode::kBit) {
      Word t = static_cast<Word>(s & d);
      flags.SetNZ(t, false, flags.c());
    } else if constexpr (kOp == Opcode::kBic) {
      r = static_cast<Word>(d & static_cast<Word>(~s));
      flags.SetNZ(r, false, flags.c());
    } else if constexpr (kOp == Opcode::kBis) {
      r = static_cast<Word>(d | s);
      flags.SetNZ(r, false, flags.c());
    } else {  // kXor
      r = static_cast<Word>(d ^ s);
      flags.SetNZ(r, false, flags.c());
    }

    if constexpr (kWrites) {
      if (dmem) {
        if (!bus.Write(daddr, r)) {
          *event = {CpuEventKind::kBusFault, 0, daddr};
          return true;
        }
      } else {
        regs[dreg] = r;
      }
    }
    psw = flags;
    pc = pc_next;
    return true;

  } else {
    static_assert(detail::kIsDirectOneOp<kOp>, "opcode has no direct handler");
    int dreg = 0;
    VirtAddr daddr = 0;
    bool dmem = false;
    switch (insn.dst.mode) {
      case AddrMode::kReg:
        if (insn.dst.reg == kPc) return false;
        dreg = insn.dst.reg;
        break;
      case AddrMode::kRegDeferred:
        if (insn.dst.reg == kPc) return false;
        dmem = true;
        daddr = regs[insn.dst.reg];
        break;
      case AddrMode::kImmediate:  // absolute as a destination
        dmem = true;
        daddr = *ext++;
        break;
      case AddrMode::kIndexed:
        if (insn.dst.reg == kPc) return false;
        dmem = true;
        daddr = static_cast<Word>(*ext++ + regs[insn.dst.reg]);
        break;
    }

    Word d = 0;
    if constexpr (kOp != Opcode::kClr) {
      if (dmem) {
        if (!bus.Read(daddr, AccessKind::kReadData, &d)) {
          *event = {CpuEventKind::kBusFault, 0, daddr};
          return true;
        }
      } else {
        d = regs[dreg];
      }
    }

    Word r = 0;
    Psw flags = psw;
    constexpr bool kWrites = kOp != Opcode::kTst;
    if constexpr (kOp == Opcode::kClr) {
      r = 0;
      flags.SetFlags(false, true, false, false);
    } else if constexpr (kOp == Opcode::kTst) {
      flags.SetNZ(d, false, false);
    } else if constexpr (kOp == Opcode::kInc) {
      r = static_cast<Word>(d + 1);
      flags.SetNZ(r, r == 0x8000, flags.c());
    } else if constexpr (kOp == Opcode::kDec) {
      r = static_cast<Word>(d - 1);
      flags.SetNZ(r, d == 0x8000, flags.c());
    } else if constexpr (kOp == Opcode::kNeg) {
      r = static_cast<Word>(0 - d);
      flags.SetNZ(r, r == 0x8000, r != 0);
    } else if constexpr (kOp == Opcode::kCom) {
      r = static_cast<Word>(~d);
      flags.SetNZ(r, false, true);
    } else if constexpr (kOp == Opcode::kAsr) {
      bool c = (d & 1) != 0;
      r = static_cast<Word>((d >> 1) | (d & 0x8000));
      bool n = (r & 0x8000) != 0;
      flags.SetFlags(n, r == 0, n != c, c);
    } else {  // kAsl
      bool c = (d & 0x8000) != 0;
      r = static_cast<Word>(d << 1);
      bool n = (r & 0x8000) != 0;
      flags.SetFlags(n, r == 0, n != c, c);
    }

    if constexpr (kWrites) {
      if (dmem) {
        if (!bus.Write(daddr, r)) {
          *event = {CpuEventKind::kBusFault, 0, daddr};
          return true;
        }
      } else {
        regs[dreg] = r;
      }
    }
    psw = flags;
    pc = pc_next;
    return true;
  }
}

// Runtime-opcode front end over DirectStepT for single-step callers
// (StepCpuPhase). Returns false for HALT/WAIT/RTI/RTS/TRAP/JMP/JSR and
// anything unrecognised: the generic path owns mode checks, stack traffic
// and control transfer.
template <typename BusT>
__attribute__((always_inline)) inline bool ExecutePredecodedDirectT(
    CpuState& state, BusT& bus, const DecodedInsn& insn, const Word* ext, CpuEvent* event) {
  Word pc = state.pc();
  Psw psw = state.psw;
  Word* const regs = state.regs.data();
  bool handled;
  switch (insn.opcode) {
#define SEP_DIRECT_CASE(OP)                                                             \
  case Opcode::OP:                                                                      \
    handled = DirectStepT<BusT, Opcode::OP>(regs, psw, pc, bus, insn, ext, event);      \
    break;
    SEP_DIRECT_CASE(kNop)
    SEP_DIRECT_CASE(kBr)
    SEP_DIRECT_CASE(kBeq)
    SEP_DIRECT_CASE(kBne)
    SEP_DIRECT_CASE(kBmi)
    SEP_DIRECT_CASE(kBpl)
    SEP_DIRECT_CASE(kBcs)
    SEP_DIRECT_CASE(kBcc)
    SEP_DIRECT_CASE(kBvs)
    SEP_DIRECT_CASE(kBvc)
    SEP_DIRECT_CASE(kBlt)
    SEP_DIRECT_CASE(kBge)
    SEP_DIRECT_CASE(kBgt)
    SEP_DIRECT_CASE(kBle)
    SEP_DIRECT_CASE(kMov)
    SEP_DIRECT_CASE(kAdd)
    SEP_DIRECT_CASE(kSub)
    SEP_DIRECT_CASE(kCmp)
    SEP_DIRECT_CASE(kBit)
    SEP_DIRECT_CASE(kBic)
    SEP_DIRECT_CASE(kBis)
    SEP_DIRECT_CASE(kXor)
    SEP_DIRECT_CASE(kClr)
    SEP_DIRECT_CASE(kInc)
    SEP_DIRECT_CASE(kDec)
    SEP_DIRECT_CASE(kNeg)
    SEP_DIRECT_CASE(kCom)
    SEP_DIRECT_CASE(kTst)
    SEP_DIRECT_CASE(kAsr)
    SEP_DIRECT_CASE(kAsl)
#undef SEP_DIRECT_CASE
    default:
      return false;
  }
  if (!handled) {
    return false;
  }
  // On a fault DirectStepT left pc/psw untouched, so this commit is the
  // identity; on success it retires the instruction.
  state.psw = psw;
  state.set_pc(pc);
  return true;
}

}  // namespace interp
}  // namespace sep

#endif  // SRC_MACHINE_INTERP_H_
