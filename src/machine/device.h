// Device framework for the SM-11.
//
// The SUE's I/O discipline, reproduced here exactly:
//   * there is NO DMA — a device can only be observed/commanded through its
//     device registers, which occupy words in the physical I/O page and are
//     therefore protectable by the MMU like ordinary memory;
//   * each device is permanently and exclusively allocated to one regime
//     (its "owner" colour); its registers are mapped into that regime's
//     address space only;
//   * devices raise interrupts, which the hardware vectors through the
//     kernel; the kernel's only I/O duty is forwarding them to the owner.
//
// A device's complete internal state (including its queues toward the
// environment) is serializable to a word vector so that the
// Proof-of-Separability checker can clone machines and compare per-colour
// projections by value.
//
// Environment interface: the world outside the machine injects words into a
// device with InjectInput() (the formal model's INPUT function) and collects
// words the device has emitted with DrainOutput() (the OUTPUT function).
#ifndef SRC_MACHINE_DEVICE_H_
#define SRC_MACHINE_DEVICE_H_

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace sep {

class Device {
 public:
  Device(std::string name, int vector, int priority, int register_count)
      : name_(std::move(name)),
        vector_(vector),
        priority_(priority),
        register_count_(register_count) {}
  virtual ~Device() = default;

  virtual std::unique_ptr<Device> Clone() const = 0;

  // Memory-mapped register access from the CPU. `offset` is in
  // [0, register_count). Reads may have side effects (e.g. reading the
  // receive buffer clears the done bit), as on real hardware.
  virtual Word ReadRegister(int offset) = 0;
  virtual void WriteRegister(int offset, Word value) = 0;

  // One device activity slot. Called by the machine between CPU steps.
  virtual void Step() = 0;

  // Serialization of the complete internal state, queues included. The
  // encoding only needs to be injective per device type.
  virtual std::vector<Word> SnapshotState() const = 0;

  // Inverse of SnapshotState(): overwrites the device's internal state from
  // a serialization previously produced by the same device type with the
  // same configuration. Returns false if the device type does not support
  // restoration (e.g. FaultyDevice, whose fault schedule is outside the
  // snapshot) or the payload is malformed; the device state is unspecified
  // after a failed restore. Devices whose snapshot deliberately omits parts
  // of their in-memory representation (LineClock and CryptoUnit leave the
  // environment queues out because nothing ever reads them) reset the
  // omitted parts to the canonical value, so
  // SnapshotState ∘ RestoreState = id on the snapshot encoding.
  virtual bool RestoreState(std::span<const Word> state) {
    (void)state;
    return false;
  }

  // Randomizes internal state within the device's representation invariants,
  // leaving the interrupt line untouched (flipping it would change which
  // colour the next operation belongs to, invalidating checker samples).
  // Used by the Proof-of-Separability checker to explore "all states with
  // the same Φ^c projection" for colours that do NOT own this device.
  virtual void Perturb(Rng& rng) {
    const std::size_t rx = rng.NextBelow(4);
    rx_from_env_.clear();
    for (std::size_t i = 0; i < rx; ++i) {
      rx_from_env_.push_back(static_cast<Word>(rng.Next() & 0xFFFF));
    }
    const std::size_t tx = rng.NextBelow(4);
    tx_to_env_.clear();
    for (std::size_t i = 0; i < tx; ++i) {
      tx_to_env_.push_back(static_cast<Word>(rng.Next() & 0xFFFF));
    }
  }

  const std::string& name() const { return name_; }
  int vector() const { return vector_; }
  int priority() const { return priority_; }
  int register_count() const { return register_count_; }

  RegimeId owner() const { return owner_; }
  void set_owner(RegimeId owner) { owner_ = owner; }

  bool interrupt_pending() const { return irq_; }
  void ClearInterrupt() { irq_ = false; }

  // --- environment side ---

  void InjectInput(Word w) { rx_from_env_.push_back(w); }

  std::vector<Word> DrainOutput() {
    std::vector<Word> out(tx_to_env_.begin(), tx_to_env_.end());
    tx_to_env_.clear();
    return out;
  }

  std::size_t pending_output() const { return tx_to_env_.size(); }
  std::size_t pending_input() const { return rx_from_env_.size(); }

  void AppendHash(Hasher& hasher) const {
    hasher.MixBytes(name_);
    for (Word w : SnapshotState()) {
      hasher.Mix(w);
    }
  }

 protected:
  void RaiseInterrupt() { irq_ = true; }

  // For RestoreState implementations: the interrupt line is part of every
  // snapshot and must be restorable in both directions.
  void SetInterruptLine(bool raised) { irq_ = raised; }

  // Helpers for SnapshotState implementations.
  static void AppendQueue(std::vector<Word>& out, const std::deque<Word>& q) {
    out.push_back(static_cast<Word>(q.size()));
    out.insert(out.end(), q.begin(), q.end());
  }

  // Inverse of AppendQueue for RestoreState implementations: reads the
  // length-prefixed queue at `*pos`, advancing it. Returns false (leaving
  // the queue unspecified) if the payload is truncated.
  static bool ReadQueue(std::span<const Word> in, std::size_t* pos, std::deque<Word>& q) {
    if (*pos >= in.size()) {
      return false;
    }
    const std::size_t count = in[*pos];
    if (in.size() - *pos - 1 < count) {
      return false;
    }
    q.assign(in.begin() + static_cast<std::ptrdiff_t>(*pos) + 1,
             in.begin() + static_cast<std::ptrdiff_t>(*pos) + 1 + static_cast<std::ptrdiff_t>(count));
    *pos += 1 + count;
    return true;
  }

  void CloneBaseInto(Device& copy) const {
    copy.owner_ = owner_;
    copy.irq_ = irq_;
    copy.rx_from_env_ = rx_from_env_;
    copy.tx_to_env_ = tx_to_env_;
  }

  std::deque<Word> rx_from_env_;  // environment -> device
  std::deque<Word> tx_to_env_;    // device -> environment

 private:
  std::string name_;
  int vector_;
  int priority_;
  int register_count_;
  RegimeId owner_ = kNoRegime;
  bool irq_ = false;
};

}  // namespace sep

#endif  // SRC_MACHINE_DEVICE_H_
