#include "src/machine/faulty_device.h"

namespace sep {

FaultyDevice::FaultyDevice(std::unique_ptr<Device> inner, DeviceFaultSpec spec,
                           std::uint64_t seed)
    : Device(inner->name(), inner->vector(), inner->priority(), inner->register_count()),
      inner_(std::move(inner)),
      spec_(spec),
      rng_(seed) {}

FaultyDevice::FaultyDevice(const FaultyDevice& other)
    : Device(other.name(), other.vector(), other.priority(), other.register_count()),
      inner_(other.inner_->Clone()),
      spec_(other.spec_),
      rng_(other.rng_),
      counters_(other.counters_) {
  other.CloneBaseInto(*this);
}

std::unique_ptr<Device> FaultyDevice::Clone() const {
  return std::unique_ptr<Device>(new FaultyDevice(*this));
}

Word FaultyDevice::ReadRegister(int offset) {
  Word value = inner_->ReadRegister(offset);
  if (spec_.read_flip_percent > 0 && rng_.NextChance(spec_.read_flip_percent, 100)) {
    value = static_cast<Word>(value ^ (Word{1} << rng_.NextBelow(16)));
    ++counters_.read_flips;
  }
  return value;
}

void FaultyDevice::WriteRegister(int offset, Word value) {
  inner_->WriteRegister(offset, value);
}

void FaultyDevice::Step() {
  // The machine owns OUR env queues; the inner device's queues are a private
  // backing store. Shuttle inputs down before the activity slot and outputs
  // up after it, so the environment never sees the indirection.
  while (!rx_from_env_.empty()) {
    inner_->InjectInput(rx_from_env_.front());
    rx_from_env_.pop_front();
  }

  const bool stalled =
      spec_.stall_percent > 0 && rng_.NextChance(spec_.stall_percent, 100);
  if (stalled) {
    ++counters_.stalls;
  } else {
    inner_->Step();
  }

  for (Word w : inner_->DrainOutput()) {
    tx_to_env_.push_back(w);
  }

  if (inner_->interrupt_pending()) {
    inner_->ClearInterrupt();
    RaiseInterrupt();
  }
  if (spec_.spurious_irq_percent > 0 &&
      rng_.NextChance(spec_.spurious_irq_percent, 100)) {
    RaiseInterrupt();
    ++counters_.spurious_interrupts;
  }
}

std::vector<Word> FaultyDevice::SnapshotState() const {
  std::vector<Word> out = inner_->SnapshotState();
  AppendQueue(out, rx_from_env_);
  AppendQueue(out, tx_to_env_);
  for (std::uint64_t c : {counters_.stalls, counters_.spurious_interrupts,
                          counters_.read_flips}) {
    out.push_back(static_cast<Word>(c & 0xFFFF));
    out.push_back(static_cast<Word>((c >> 16) & 0xFFFF));
  }
  return out;
}

void FaultyDevice::Perturb(Rng& rng) {
  Device::Perturb(rng);
  inner_->Perturb(rng);
}

}  // namespace sep
