// The separation kernel.
//
// A faithful reconstruction of the structure of RSRE's SUE ("Secure User
// Environment") as the paper describes it:
//
//   * a fixed, small number of regimes, each permanently allocated a fixed
//     partition of real memory; no paging, no virtual-memory management;
//   * no scheduling: regimes get control round-robin and run until they
//     suspend voluntarily (SWAP / AWAIT kernel calls);
//   * no DMA anywhere in the system; devices are driven exclusively through
//     their memory-mapped registers, which the MMU places in the owning
//     regime's address space — so almost all I/O responsibility leaves the
//     kernel;
//   * the kernel's only I/O duties are fielding interrupts (the hardware
//     vectors them through kernel space) and forwarding them to the owning
//     regime, plus the small assist needed to return from a regime's
//     interrupt handler;
//   * kernel-mediated one-directional channels are the only communication
//     between regimes.
//
// The kernel knows NOTHING about security policy: no labels, no lattice, no
// subjects or objects. Its one job is making the shared machine
// indistinguishable, from each regime's viewpoint, from a private machine
// plus explicit communication lines.
//
// Like SUE's PDP-11 core image, ALL dynamic kernel state (current regime,
// register save areas, pending-interrupt masks, channel rings) lives inside
// the machine's physical memory, in the kernel's own partition. The C++
// object holds only immutable configuration. Cloning the machine and
// attaching an identically-configured kernel therefore reproduces behaviour
// exactly — which is what lets the Proof-of-Separability checker treat
// "machine state" as the complete concrete state.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/kernel/config.h"
#include "src/machine/machine.h"

namespace sep {

class SeparationKernel : public MachineClient {
 public:
  // The kernel drives `machine`; both must outlive the kernel. Boot() must
  // be called before stepping the machine.
  SeparationKernel(Machine& machine, KernelConfig config);

  // Validates the configuration, initializes the kernel partition, loads
  // nothing (callers load regime images), programs device ownership and
  // dispatches regime 0. Installs itself as the machine client.
  Result<> Boot();

  // Attaches to an already-initialized machine (a clone of a booted system)
  // WITHOUT reinitializing anything. Because all dynamic kernel state lives
  // in the machine's memory, the adopted kernel behaves identically to the
  // one the original machine ran under.
  Result<> Adopt();

  // Loads a program image into a regime's partition (before or after Boot).
  Result<> LoadRegimeImage(int regime, Word base, const std::vector<Word>& words);

  const KernelConfig& config() const { return config_; }

  // --- introspection (used by the checker, benches and tests) ---

  // Regime currently executing, or kIdleRegime.
  Word CurrentRegime() const { return KRead(kOffCurrentRegime); }

  bool RegimeHalted(int regime) const { return (SaveRead(regime, kSaveFlags) & kFlagHalted) != 0; }
  bool AllRegimesHalted() const;

  Word RegimeSavedReg(int regime, int reg) const {
    return SaveRead(regime, kSaveRegs + static_cast<std::uint32_t>(reg));
  }
  Word RegimePendingMask(int regime) const { return SaveRead(regime, kSavePending); }

  std::uint64_t SwapCount() const { return Count64(kOffSwapCountLo); }
  std::uint64_t IrqForwardCount() const { return Count64(kOffIrqForwardLo); }
  std::uint64_t KernelCallCount() const { return Count64(kOffKernelCallLo); }
  // Regimes halted by the kernel's defensive checks (malformed call
  // arguments, corrupted channel rings, MMU/illegal-instruction faults).
  std::uint64_t FaultCount() const { return Count64(kOffFaultCountLo); }

  // Channel occupancy of the ring the given end uses (0 = sender, 1 = recv).
  Word ChannelCount(int channel, int end) const;

  // Shared-ring occupancy / high-watermark (kernel control words).
  Word SharedRingOccupancy(int ring) const;
  Word SharedRingWatermark(int ring) const;

  // Owner regime of a machine device slot, or -1.
  int DeviceOwner(int slot) const;

  // Number of distinct kernel entry points (trap codes + interrupt + fault
  // paths); reported by the kernel-size experiment E10.
  static int EntryPointCount() { return 14 + 3; }

  // True when the current regime has deferred kernel work (AWAIT completion
  // or delivery of an interrupt that arrived while it was switched out).
  // Mirrors what OnBeforeExecute() would do, without doing it.
  bool HasDeferredWork() const;

  // Φ^c: the colour's complete abstract machine state, encoded location-
  // independently (register VALUES whether live or saved; channel contents
  // as logical queues, not ring buffers; awaiting and resume-work flags
  // normalized to one abstract "blocked in AWAIT" bit).
  std::vector<Word> AbstractProjection(int colour) const;

  // Randomizes everything outside colour c's abstract view, within kernel
  // representation invariants and without changing COLOUR(s). See
  // SharedSystem::PerturbOthers.
  void PerturbNonColour(int colour, Rng& rng);

  // --- MachineClient ---
  void OnTrap(const TrapInfo& info) override;
  void OnInterrupt(int device_index) override;
  bool OnBeforeExecute() override;

 private:
  // Kernel-partition word access.
  Word KRead(std::uint32_t offset) const { return machine_.PhysRead(config_.kernel_base + offset); }
  void KWrite(std::uint32_t offset, Word value) {
    machine_.PhysWrite(config_.kernel_base + offset, value);
  }
  std::uint32_t SaveOffset(int regime, std::uint32_t field) const {
    return kSaveAreaBase + static_cast<std::uint32_t>(regime) * kSaveAreaStride + field;
  }
  Word SaveRead(int regime, std::uint32_t field) const { return KRead(SaveOffset(regime, field)); }
  void SaveWrite(int regime, std::uint32_t field, Word value) {
    KWrite(SaveOffset(regime, field), value);
  }
  std::uint64_t Count64(std::uint32_t lo_offset) const {
    return static_cast<std::uint64_t>(KRead(lo_offset)) |
           (static_cast<std::uint64_t>(KRead(lo_offset + 1)) << 16);
  }
  void Bump64(std::uint32_t lo_offset) {
    Word lo = KRead(lo_offset);
    KWrite(lo_offset, static_cast<Word>(lo + 1));
    if (lo == 0xFFFF) {
      KWrite(lo_offset + 1, static_cast<Word>(KRead(lo_offset + 1) + 1));
    }
  }

  // Translation of a regime virtual address to physical, page-0 only (used
  // when the kernel touches a regime's stack on its behalf).
  bool RegimeVirtToPhys(int regime, VirtAddr vaddr, PhysAddr* out) const;

  // Context switching.
  void SaveCurrentContext();
  void ProgramMmuFor(int regime);
  void RestoreContext(int regime);
  void DispatchNext(int start_from);
  void EnterIdle();
  bool RegimeRunnable(int regime) const;

  // Interrupt forwarding.
  void DeliverPendingInterrupt(int regime);
  bool HasDeliverableVector(int regime) const;

  // Appends the logical contents of a channel ring (count + words in queue
  // order) to `out` — the location-independent view used by Φ^c.
  void AppendRingLogical(int channel, int end, std::vector<Word>& out) const;
  void PerturbRing(int channel, int end, Rng& rng);

  // Kernel calls.
  void CallSwap();
  void CallSend();
  void CallRecv();
  void CallStat();
  void CallSetVec();
  void CallReti();
  void CallAwait();
  void CallHaltRegime();
  void CallGetId();
  void CallSendv();
  void CallRecvv();
  void CallRingPut();
  void CallRingGet();
  void CallRingStat();
  void FaultRegime(const std::string& reason);

  // Backpressure accounting: a send-side operation found its channel/ring
  // without room. Observability only (counter + trace event, never machine
  // state): the stall is the caller's own observation — R0 = 0 — so it needs
  // no kernel-partition word and cannot disturb any other colour's view.
  // Event a0 is the channel id (0x8000 | ring for shared rings), a1 the
  // requested word count.
  void NoteChannelStall(Word id, Word requested);

  // Channel ring helpers (operate on kernel partition words).
  std::uint32_t RingBase(int channel, int end) const;
  bool RingPush(std::uint32_t ring_base, std::uint32_t capacity, Word value);
  bool RingPop(std::uint32_t ring_base, std::uint32_t capacity, Word* value);
  // Batched variants: read the header once, move `words.size()` (or `n`)
  // payload words, write the header once. The caller has already verified
  // RingIntact and that the batch fits (push) / is available (pop).
  void RingPushBatch(std::uint32_t ring_base, std::uint32_t capacity,
                     const std::vector<Word>& words);
  void RingPopBatch(std::uint32_t ring_base, std::uint32_t capacity, std::uint32_t n,
                    std::vector<Word>& out);
  // Representation invariant of a ring header: head < capacity and
  // count <= capacity (and capacity itself non-zero, so slot arithmetic is
  // total). Violated only by memory corruption; every kernel call that
  // consults a ring verifies this before trusting it.
  bool RingIntact(std::uint32_t ring_base, std::uint32_t capacity) const;

  // Reads R2 scatter-gather descriptors at regime vaddr R1 and resolves them
  // to physical extents inside the caller's partition. Returns false (after
  // faulting the regime) on any malformed table: bad count, table or payload
  // outside the partition, zero-length entry, batch above kMaxBatchWords.
  struct SgExtent {
    PhysAddr base;
    std::uint32_t words;
  };
  bool ReadSgDescriptors(int regime, std::vector<SgExtent>& out, std::uint32_t* total);

  // Shared-ring doorbell bookkeeping. A regime's windows are numbered in
  // shared_rings declaration order (producer or consumer end); a consumer's
  // doorbell line is device_slots.size() + its consumer-ordinal.
  int DoorbellLine(int regime, int ring) const;
  int DoorbellLineCount(int regime) const;

  int LocalDeviceIndex(int regime, int slot) const;

  Machine& machine_;
  KernelConfig config_;
  bool booted_ = false;
};

}  // namespace sep

#endif  // SRC_KERNEL_KERNEL_H_
