#include "src/kernel/config.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/machine/mmu.h"

namespace sep {

namespace {

std::uint32_t ChannelStride(const ChannelConfig& channel) {
  return 2 * (2 + channel.capacity);
}

}  // namespace

std::uint32_t RequiredKernelWords(const KernelConfig& config) {
  std::uint32_t words =
      kSaveAreaBase + static_cast<std::uint32_t>(config.regimes.size()) * kSaveAreaStride;
  for (const ChannelConfig& channel : config.channels) {
    words += ChannelStride(channel);
  }
  words += static_cast<std::uint32_t>(config.shared_rings.size()) * kSharedRingCtlStride;
  return words;
}

std::uint32_t ChannelRingOffset(const KernelConfig& config, int index, int which) {
  std::uint32_t offset =
      kSaveAreaBase + static_cast<std::uint32_t>(config.regimes.size()) * kSaveAreaStride;
  for (int i = 0; i < index; ++i) {
    offset += ChannelStride(config.channels[i]);
  }
  if (config.cut_channels && which == 1) {
    offset += 2 + config.channels[index].capacity;
  }
  return offset;
}

std::uint32_t SharedRingCtlOffset(const KernelConfig& config, int index) {
  std::uint32_t offset =
      kSaveAreaBase + static_cast<std::uint32_t>(config.regimes.size()) * kSaveAreaStride;
  for (const ChannelConfig& channel : config.channels) {
    offset += ChannelStride(channel);
  }
  return offset + static_cast<std::uint32_t>(index) * kSharedRingCtlStride;
}

Result<> ValidateConfig(const KernelConfig& config, std::size_t memory_words, int device_count) {
  if (config.regimes.empty()) {
    return Err("no regimes configured");
  }
  if (config.regimes.size() > kMaxRegimes) {
    return Err(Format("too many regimes (%zu > %d)", config.regimes.size(), kMaxRegimes));
  }
  if (RequiredKernelWords(config) > config.kernel_words) {
    return Err(Format("kernel partition too small: need %u words, have %u",
                      RequiredKernelWords(config), config.kernel_words));
  }

  // Collect all partitions (kernel's included) and check pairwise overlap.
  struct Extent {
    PhysAddr base;
    std::uint32_t words;
    std::string name;
  };
  std::vector<Extent> extents;
  extents.push_back({config.kernel_base, config.kernel_words, "kernel"});
  for (const SharedRingConfig& ring : config.shared_rings) {
    extents.push_back({ring.data_base, ring.capacity, "ring " + ring.name});
  }
  for (const RegimeConfig& regime : config.regimes) {
    if (regime.mem_words == 0) {
      return Err("regime " + regime.name + " has an empty partition");
    }
    if (regime.mem_words > kPageWords) {
      return Err("regime " + regime.name + " partition exceeds one MMU page (8192 words)");
    }
    if (regime.entry >= regime.mem_words) {
      return Err("regime " + regime.name + " entry point outside its partition");
    }
    extents.push_back({regime.mem_base, regime.mem_words, regime.name});
  }
  for (const Extent& e : extents) {
    if (e.base + e.words > memory_words) {
      return Err("partition of " + e.name + " extends past physical memory");
    }
  }
  for (std::size_t i = 0; i < extents.size(); ++i) {
    for (std::size_t j = i + 1; j < extents.size(); ++j) {
      const Extent& a = extents[i];
      const Extent& b = extents[j];
      if (a.base < b.base + b.words && b.base < a.base + a.words) {
        return Err("partitions of " + a.name + " and " + b.name + " overlap");
      }
    }
  }

  // Devices: exclusive, contiguous per regime.
  std::vector<int> owner(static_cast<std::size_t>(device_count), -1);
  for (std::size_t r = 0; r < config.regimes.size(); ++r) {
    const RegimeConfig& regime = config.regimes[r];
    if (regime.device_slots.size() > kMaxDevicesPerRegime) {
      return Err("regime " + regime.name + " owns too many devices");
    }
    for (std::size_t k = 0; k < regime.device_slots.size(); ++k) {
      int slot = regime.device_slots[k];
      if (slot < 0 || slot >= device_count) {
        return Err(Format("regime %s references nonexistent device slot %d", regime.name.c_str(),
                          slot));
      }
      if (owner[static_cast<std::size_t>(slot)] != -1) {
        return Err(Format("device slot %d allocated to two regimes", slot));
      }
      owner[static_cast<std::size_t>(slot)] = static_cast<int>(r);
      if (k > 0 && slot != regime.device_slots[k - 1] + 1) {
        return Err("device slots of regime " + regime.name + " are not contiguous");
      }
    }
  }

  // Channels: endpoints must be distinct, existing regimes.
  for (const ChannelConfig& channel : config.channels) {
    if (channel.sender < 0 || channel.sender >= static_cast<int>(config.regimes.size()) ||
        channel.receiver < 0 || channel.receiver >= static_cast<int>(config.regimes.size())) {
      return Err("channel " + channel.name + " has an out-of-range endpoint");
    }
    if (channel.sender == channel.receiver) {
      return Err("channel " + channel.name + " connects a regime to itself");
    }
    if (channel.capacity == 0 || channel.capacity > 4096) {
      return Err("channel " + channel.name + " has unreasonable capacity");
    }
  }

  // Shared rings: distinct endpoints, power-of-two capacity, bounded window
  // and doorbell budgets per regime.
  std::vector<int> windows(config.regimes.size(), 0);
  std::vector<int> doorbells(config.regimes.size(), 0);
  for (const SharedRingConfig& ring : config.shared_rings) {
    if (ring.producer < 0 || ring.producer >= static_cast<int>(config.regimes.size()) ||
        ring.consumer < 0 || ring.consumer >= static_cast<int>(config.regimes.size())) {
      return Err("shared ring " + ring.name + " has an out-of-range endpoint");
    }
    if (ring.producer == ring.consumer) {
      return Err("shared ring " + ring.name + " connects a regime to itself");
    }
    if (ring.capacity < 8 || ring.capacity > kPageWords ||
        (ring.capacity & (ring.capacity - 1)) != 0) {
      return Err("shared ring " + ring.name +
                 " capacity must be a power of two in [8, 8192]");
    }
    ++windows[static_cast<std::size_t>(ring.producer)];
    ++windows[static_cast<std::size_t>(ring.consumer)];
    ++doorbells[static_cast<std::size_t>(ring.consumer)];
  }
  for (std::size_t r = 0; r < config.regimes.size(); ++r) {
    if (windows[r] > kMaxSharedRingsPerRegime) {
      return Err("regime " + config.regimes[r].name + " maps too many shared-ring windows");
    }
    // Doorbell lines are numbered after the regime's local devices and share
    // the pending mask / vector slots with them.
    if (config.regimes[r].device_slots.size() + static_cast<std::size_t>(doorbells[r]) >
        kMaxDevicesPerRegime) {
      return Err("regime " + config.regimes[r].name +
                 " has too many devices + ring doorbells");
    }
  }
  return Ok();
}

}  // namespace sep
