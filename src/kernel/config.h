// Static configuration of the separation kernel.
//
// Exactly as in the SUE: the set of regimes, their fixed physical memory
// partitions, their permanently-allocated devices and the inter-regime
// channels are all fixed at system-generation time. There is no dynamic
// creation of anything. Validation rejects overlapping partitions, shared
// devices, and channels whose ends are not distinct regimes — the static
// counterparts of the isolation the kernel enforces at run time.
#ifndef SRC_KERNEL_CONFIG_H_
#define SRC_KERNEL_CONFIG_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace sep {

struct RegimeConfig {
  std::string name;
  PhysAddr mem_base = 0;        // fixed physical partition
  std::uint32_t mem_words = 0;  // partition length
  Word entry = 0;               // virtual entry point (partition-relative)
  // Machine device slots owned by this regime. Must be contiguous and
  // ascending so one MMU page can map the regime's register window.
  std::vector<int> device_slots;
};

struct ChannelConfig {
  std::string name;
  int sender = -1;    // regime index
  int receiver = -1;  // regime index
  std::uint32_t capacity = 16;  // words buffered in the kernel partition
};

// A shared-memory ring channel: a producer/consumer data ring living in its
// own physical region OUTSIDE both partitions, mapped read-write into the
// producer's address space and read-only into the consumer's. The head/tail
// indices live in kernel-owned words (the regimes cannot touch them); a
// RINGPUT that takes the ring from empty to non-empty raises the consumer's
// doorbell interrupt line. This is the paper's "explicit communication line"
// scaled to bulk traffic: the payload never crosses a trap boundary.
struct SharedRingConfig {
  std::string name;
  int producer = -1;  // regime index; maps the data window read-write
  int consumer = -1;  // regime index; maps the data window read-only
  // Data words in the ring. Power of two, 8..8192, so slot arithmetic is a
  // mask and one MMU page can map the whole window.
  std::uint32_t capacity = 256;
  // Physical base of the data region; carved by SystemBuilder outside every
  // partition (including the kernel's).
  PhysAddr data_base = 0;
};

// Deliberate defects, injectable for checker-validation experiments (E3).
// A production build would not carry these; here they are the ground truth
// for "does Proof of Separability actually detect insecurity?".
struct KernelFaults {
  // SWAP dispatches the next regime without reloading R0..R5: the incoming
  // regime observes the outgoing regime's register contents.
  bool skip_register_restore = false;
  // Register restore skips the condition codes: a one-bit-per-flag covert
  // channel between regimes (the classic PSW leak).
  bool leak_condition_codes = false;
  // Interrupt fielding sets the pending bit of EVERY regime, not just the
  // owning one: non-c device activity becomes visible to c.
  bool broadcast_interrupts = false;
  // Every regime's MMU page 1 is mapped (read-only) onto regime 0's
  // partition: a direct cross-partition read window.
  bool shared_mmu_window = false;
  // SEND on channel k deposits into channel (k+1) mod n.
  bool misroute_channels = false;
  // SWAP does not save the outgoing regime's registers (a correctness bug
  // that is NOT an isolation leak; separability alone does not catch it —
  // see EXPERIMENTS.md E3 discussion).
  bool skip_register_save = false;

  bool AnyLeak() const {
    return skip_register_restore || leak_condition_codes || broadcast_interrupts ||
           shared_mmu_window || misroute_channels;
  }
};

struct KernelConfig {
  PhysAddr kernel_base = 0;        // kernel data partition
  std::uint32_t kernel_words = 0;  // partition length
  std::vector<RegimeConfig> regimes;
  std::vector<ChannelConfig> channels;
  std::vector<SharedRingConfig> shared_rings;
  // When true, every channel is "cut" in the paper's Section 4 sense: the
  // sender's references go to one ring (X1) and the receiver's to another
  // (X2). The kernel code paths are textually identical; only the aliasing
  // of the ring base address differs.
  bool cut_channels = false;
  KernelFaults faults;
};

inline constexpr int kMaxRegimes = 8;
inline constexpr int kMaxDevicesPerRegime = 5;

// Kernel partition layout (word offsets from kernel_base).
inline constexpr std::uint32_t kOffCurrentRegime = 0;
inline constexpr std::uint32_t kOffSwapCountLo = 1;
inline constexpr std::uint32_t kOffSwapCountHi = 2;
inline constexpr std::uint32_t kOffIrqForwardLo = 3;
inline constexpr std::uint32_t kOffIrqForwardHi = 4;
inline constexpr std::uint32_t kOffKernelCallLo = 5;
inline constexpr std::uint32_t kOffKernelCallHi = 6;
// Regimes halted by FaultRegime (malformed kernel-call arguments, corrupted
// channel rings, anything the kernel's defensive checks reject).
inline constexpr std::uint32_t kOffFaultCountLo = 7;
inline constexpr std::uint32_t kOffFaultCountHi = 8;
inline constexpr std::uint32_t kSaveAreaBase = 10;
inline constexpr std::uint32_t kSaveAreaStride = 16;
// Save area layout: +0..7 R0-R7, +8 PSW, +9 flags, +10 pending-irq mask,
// +11..15 interrupt handler vectors for local devices 0..4.
inline constexpr std::uint32_t kSaveRegs = 0;
inline constexpr std::uint32_t kSavePsw = 8;
inline constexpr std::uint32_t kSaveFlags = 9;
inline constexpr std::uint32_t kSavePending = 10;
inline constexpr std::uint32_t kSaveVectors = 11;

inline constexpr Word kFlagHalted = 1 << 0;
inline constexpr Word kFlagAwaiting = 1 << 1;
inline constexpr Word kFlagInHandler = 1 << 2;
// Set when a regime is dispatched out of AWAIT: the completion work (writing
// the pending mask into R0, delivering the interrupt) is deferred to the
// regime's own first CPU phase so that it executes under the regime's own
// colour, not under the colour of whichever regime performed the SWAP.
inline constexpr Word kFlagResumeWork = 1 << 3;

inline constexpr Word kIdleRegime = 0xFFFF;

// Kernel-call trap codes (the complete SUE-style kernel interface).
inline constexpr std::uint16_t kCallSwap = 0;    // yield the CPU
inline constexpr std::uint16_t kCallSend = 1;    // R0=channel, R1=word -> R0=1 ok / 0 full
inline constexpr std::uint16_t kCallRecv = 2;    // R0=channel -> R0=1 ok / 0 empty, R1=word
inline constexpr std::uint16_t kCallStat = 3;    // R0=channel -> R0=readable, R1=writable
inline constexpr std::uint16_t kCallSetVec = 4;  // R0=local device, R1=handler address
inline constexpr std::uint16_t kCallReti = 5;    // return from regime interrupt handler
inline constexpr std::uint16_t kCallAwait = 6;   // suspend until an owned interrupt is pending
inline constexpr std::uint16_t kCallHalt = 7;    // regime is finished
inline constexpr std::uint16_t kCallGetId = 8;   // -> R0 = own regime index

// Batched scatter-gather channel calls. R0=channel, R1=descriptor table
// vaddr (pairs of [addr, len] in the caller's partition), R2=descriptor
// count. One RingIntact validation per batch, one header update per batch.
// SENDV is all-or-nothing: R0 = words sent (0 when the ring lacks space for
// the whole batch — a counted backpressure stall). RECVV scatters up to the
// descriptors' total and returns R0 = words received (partial is fine).
inline constexpr std::uint16_t kCallSendv = 9;
inline constexpr std::uint16_t kCallRecvv = 10;
// Shared-ring doorbell calls. RINGPUT: R0=ring, R1=words published (the
// producer has already written them into the mapped window at its mirrored
// tail) -> R0=1, or 0 when free space is insufficient (counted stall); the
// empty->non-empty transition raises the consumer's doorbell line. RINGGET:
// R0=ring, R1=words released by the consumer -> R0=1 (over-release is a
// regime fault); draining the ring clears the doorbell pending bit.
// RINGSTAT: R0=ring -> R0=occupancy, R1=free space, R2=high-watermark
// (RINGSTAT is the one kernel call that clobbers R2).
inline constexpr std::uint16_t kCallRingPut = 11;
inline constexpr std::uint16_t kCallRingGet = 12;
inline constexpr std::uint16_t kCallRingStat = 13;

// Bounds of one SENDV/RECVV batch: at most this many payload words and
// descriptor pairs per trap. Keeps the kernel's per-call work bounded, like
// every other SUE call.
inline constexpr std::uint32_t kMaxBatchWords = 64;
inline constexpr std::uint32_t kMaxBatchDescriptors = 8;

// Shared-ring kernel control words, appended after the channel ring area
// (absent entirely when no shared rings are configured, so classic layouts
// are bit-identical). Per ring: head, tail, high-watermark, one reserved
// word. head/tail are free-running 16-bit counters — occupancy is
// Word(tail - head), the slot of logical index i is i & (capacity - 1) —
// so a full ring (occupancy == capacity) is never ambiguous with empty.
inline constexpr std::uint32_t kSharedRingCtlStride = 4;
inline constexpr std::uint32_t kSharedRingHead = 0;
inline constexpr std::uint32_t kSharedRingTail = 1;
inline constexpr std::uint32_t kSharedRingWatermark = 2;

// MMU placement of shared-ring data windows: a regime's j-th ring window
// (in shared_rings declaration order, producer or consumer end) occupies
// page kSharedRingPageBase + j. Pages 0 (partition) and 7 (devices) stay as
// before; at most kMaxSharedRingsPerRegime windows per regime.
inline constexpr int kSharedRingPageBase = 4;
inline constexpr int kMaxSharedRingsPerRegime = 3;

// Doorbell interrupt lines share the regime's pending mask and vector slots
// with its devices: ring doorbells are numbered after the last local device,
// so device_slots.size() + consumer-ring count must stay <= kMaxDevicesPerRegime.

// Number of kernel-partition words the given configuration needs; the
// channel area begins after the save areas, each channel occupying two
// rings of (2 + capacity) words (head, count, data...), followed by
// kSharedRingCtlStride control words per shared ring.
std::uint32_t RequiredKernelWords(const KernelConfig& config);

// Word offset (from kernel_base) of channel `index`'s ring `which` (0 = X1 /
// sender end, 1 = X2 / receiver end). With cut_channels == false both ends
// alias ring 0 — the paper's shared object X.
std::uint32_t ChannelRingOffset(const KernelConfig& config, int index, int which);

// Word offset (from kernel_base) of shared ring `index`'s control words.
std::uint32_t SharedRingCtlOffset(const KernelConfig& config, int index);

// Virtual base address of MMU page `page` (13-bit page offsets).
inline constexpr VirtAddr PageVBase(int page) { return static_cast<VirtAddr>(page) << 13; }

// Structural validation: bounds, overlaps, device contiguity, endpoints.
// `memory_words`/`device_count` describe the machine this will run on.
Result<> ValidateConfig(const KernelConfig& config, std::size_t memory_words, int device_count);

}  // namespace sep

#endif  // SRC_KERNEL_CONFIG_H_
