#include "src/kernel/kernel.h"

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

namespace {

// Counter references resolve once; bumps are relaxed atomics, and every
// site is behind obs::Enabled() so a run without observability pays one
// relaxed load + branch per kernel entry, nothing more.
struct KernelCounters {
  obs::Counter& calls = obs::Metrics().GetCounter("kernel.calls");
  obs::Counter& swaps = obs::Metrics().GetCounter("kernel.swaps");
  obs::Counter& irq_forwards = obs::Metrics().GetCounter("kernel.irq_forwards");
  obs::Counter& irq_delivers = obs::Metrics().GetCounter("kernel.irq_delivers");
  obs::Counter& faults = obs::Metrics().GetCounter("kernel.faults");
  obs::Counter& mmu_remaps = obs::Metrics().GetCounter("kernel.mmu_remaps");
  obs::Counter& channel_stalls = obs::Metrics().GetCounter("kernel.channel_stall");
};

KernelCounters& Counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace

SeparationKernel::SeparationKernel(Machine& machine, KernelConfig config)
    : machine_(machine), config_(std::move(config)) {}

Result<> SeparationKernel::Boot() {
  if (Result<> r = ValidateConfig(config_, machine_.memory().size(), machine_.device_count());
      !r.ok()) {
    return r;
  }

  // Zero the kernel partition: save areas, channel rings, counters.
  machine_.memory().Fill(config_.kernel_base, config_.kernel_words, 0);

  // Permanently allocate devices to their regimes.
  for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
    for (int slot : config_.regimes[r].device_slots) {
      machine_.device(slot).set_owner(static_cast<RegimeId>(r));
    }
  }

  // Initialize every regime's save area: PC at entry, stack at partition
  // top, user mode, priority 0, no pending interrupts.
  for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
    const RegimeConfig& regime = config_.regimes[r];
    for (std::uint32_t i = 0; i < 8; ++i) {
      SaveWrite(static_cast<int>(r), kSaveRegs + i, 0);
    }
    SaveWrite(static_cast<int>(r), kSaveRegs + kSp, static_cast<Word>(regime.mem_words));
    SaveWrite(static_cast<int>(r), kSaveRegs + kPc, regime.entry);
    Psw psw;
    psw.set_mode(CpuMode::kUser);
    SaveWrite(static_cast<int>(r), kSavePsw, psw.bits());
  }

  // Channel ring headers are already zero (head = 0, count = 0), as are the
  // shared-ring control words. Zero the shared-ring data windows too: they
  // live outside the kernel partition.
  for (const SharedRingConfig& ring : config_.shared_rings) {
    machine_.memory().Fill(ring.data_base, ring.capacity, 0);
  }

  machine_.mmu().DisableAll(CpuMode::kKernel);
  machine_.set_client(this);
  booted_ = true;
  KWrite(kOffCurrentRegime, kIdleRegime);
  DispatchNext(0);
  return Ok();
}

Result<> SeparationKernel::LoadRegimeImage(int regime, Word base,
                                           const std::vector<Word>& words) {
  if (regime < 0 || regime >= static_cast<int>(config_.regimes.size())) {
    return Err("no such regime");
  }
  const RegimeConfig& rc = config_.regimes[static_cast<std::size_t>(regime)];
  if (static_cast<std::uint32_t>(base) + words.size() > rc.mem_words) {
    return Err("image does not fit in partition of " + rc.name);
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    machine_.PhysWrite(rc.mem_base + base + static_cast<PhysAddr>(i), words[i]);
  }
  return Ok();
}

bool SeparationKernel::AllRegimesHalted() const {
  for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
    if (!RegimeHalted(static_cast<int>(r))) {
      return false;
    }
  }
  return true;
}

Word SeparationKernel::ChannelCount(int channel, int end) const {
  return KRead(ChannelRingOffset(config_, channel, end) + 1);
}

Word SeparationKernel::SharedRingOccupancy(int ring) const {
  const std::uint32_t ctl = SharedRingCtlOffset(config_, ring);
  return static_cast<Word>(KRead(ctl + kSharedRingTail) - KRead(ctl + kSharedRingHead));
}

Word SeparationKernel::SharedRingWatermark(int ring) const {
  return KRead(SharedRingCtlOffset(config_, ring) + kSharedRingWatermark);
}

int SeparationKernel::DoorbellLine(int regime, int ring) const {
  int ordinal = 0;
  for (std::size_t i = 0; i < config_.shared_rings.size(); ++i) {
    if (config_.shared_rings[i].consumer != regime) {
      continue;
    }
    if (static_cast<int>(i) == ring) {
      return static_cast<int>(
                 config_.regimes[static_cast<std::size_t>(regime)].device_slots.size()) +
             ordinal;
    }
    ++ordinal;
  }
  return -1;
}

int SeparationKernel::DoorbellLineCount(int regime) const {
  int count = 0;
  for (const SharedRingConfig& ring : config_.shared_rings) {
    count += ring.consumer == regime ? 1 : 0;
  }
  return count;
}

int SeparationKernel::DeviceOwner(int slot) const {
  for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
    for (int s : config_.regimes[r].device_slots) {
      if (s == slot) {
        return static_cast<int>(r);
      }
    }
  }
  return -1;
}

int SeparationKernel::LocalDeviceIndex(int regime, int slot) const {
  const auto& slots = config_.regimes[static_cast<std::size_t>(regime)].device_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == slot) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool SeparationKernel::RegimeVirtToPhys(int regime, VirtAddr vaddr, PhysAddr* out) const {
  const RegimeConfig& rc = config_.regimes[static_cast<std::size_t>(regime)];
  if (vaddr >= rc.mem_words) {
    return false;  // only page 0 (the partition) backs regime stacks
  }
  *out = rc.mem_base + vaddr;
  return true;
}

// --- context switching -------------------------------------------------------

void SeparationKernel::SaveCurrentContext() {
  const Word cur = CurrentRegime();
  if (cur == kIdleRegime) {
    return;
  }
  if (config_.faults.skip_register_save) {
    return;  // injected defect: outgoing context is lost
  }
  const int r = cur;
  for (std::uint32_t i = 0; i < 8; ++i) {
    SaveWrite(r, kSaveRegs + i, machine_.cpu().regs[i]);
  }
  SaveWrite(r, kSavePsw, machine_.cpu().psw.bits());
}

void SeparationKernel::ProgramMmuFor(int regime) {
  // Colour kColourKernel: reprogramming the map is kernel bookkeeping in
  // nobody's abstract view (the regime never observes its own page table).
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kMmuRemap, obs::kColourKernel,
              machine_.tick(), static_cast<Word>(regime));
    Counters().mmu_remaps.Add();
  }
  const RegimeConfig& rc = config_.regimes[static_cast<std::size_t>(regime)];
  Mmu& mmu = machine_.mmu();
  mmu.DisableAll(CpuMode::kUser);
  mmu.SetPage(CpuMode::kUser, 0, {rc.mem_base, rc.mem_words, PageAccess::kReadWrite});
  if (!rc.device_slots.empty()) {
    const PhysAddr base = machine_.DeviceRegBase(rc.device_slots.front());
    const std::uint32_t span =
        static_cast<std::uint32_t>(rc.device_slots.size()) * kDeviceRegSpan;
    mmu.SetPage(CpuMode::kUser, 7, {base, span, PageAccess::kReadWrite});
  }
  // Shared-ring data windows: the regime's j-th ring (declaration order,
  // either end) on page kSharedRingPageBase + j — read-write for the
  // producer, read-only for the consumer. Head/tail never appear here; only
  // the kernel can move them.
  int window = 0;
  for (const SharedRingConfig& ring : config_.shared_rings) {
    const bool producer = ring.producer == regime;
    if (!producer && ring.consumer != regime) {
      continue;
    }
    mmu.SetPage(CpuMode::kUser, kSharedRingPageBase + window,
                {ring.data_base, ring.capacity,
                 producer ? PageAccess::kReadWrite : PageAccess::kReadOnly});
    ++window;
  }
  if (config_.faults.shared_mmu_window && regime != 0) {
    // Injected defect: a read window onto regime 0's partition.
    const RegimeConfig& victim = config_.regimes[0];
    mmu.SetPage(CpuMode::kUser, 1, {victim.mem_base, victim.mem_words, PageAccess::kReadOnly});
  }
}

void SeparationKernel::RestoreContext(int regime) {
  ProgramMmuFor(regime);
  CpuState& cpu = machine_.cpu();
  const Word old_psw_bits = cpu.psw.bits();

  const int first_reg = config_.faults.skip_register_restore ? kSp : 0;
  for (int i = first_reg; i < 8; ++i) {
    cpu.regs[i] = SaveRead(regime, kSaveRegs + static_cast<std::uint32_t>(i));
  }

  Psw psw(SaveRead(regime, kSavePsw));
  psw.set_mode(CpuMode::kUser);  // regimes never run privileged
  if (config_.faults.leak_condition_codes) {
    // Injected defect: condition codes bleed across the switch.
    psw.set_bits(static_cast<Word>((psw.bits() & ~0x000F) | (old_psw_bits & 0x000F)));
  }
  cpu.psw = psw;

  KWrite(kOffCurrentRegime, static_cast<Word>(regime));
  machine_.set_waiting(false);

  // AWAIT completion (writing the pending mask into R0, vectoring into the
  // handler) is DEFERRED to the regime's own first CPU phase: this dispatch
  // may be running under another regime's SWAP, and performing visible work
  // on the incoming regime here would make one colour's operation change
  // another colour's abstract state. Φ^c treats awaiting and resume-work as
  // the same abstract "blocked in AWAIT" value, so this flag flip is
  // invisible to the regime's abstraction.
  Word flags = SaveRead(regime, kSaveFlags);
  if (flags & kFlagAwaiting) {
    SaveWrite(regime, kSaveFlags,
              static_cast<Word>((flags & ~kFlagAwaiting) | kFlagResumeWork));
  }
}

bool SeparationKernel::RegimeRunnable(int regime) const {
  const Word flags = SaveRead(regime, kSaveFlags);
  if (flags & kFlagHalted) {
    return false;
  }
  if ((flags & kFlagAwaiting) && SaveRead(regime, kSavePending) == 0) {
    return false;
  }
  return true;
}

bool SeparationKernel::HasDeliverableVector(int regime) const {
  const Word pending = SaveRead(regime, kSavePending);
  for (int d = 0; d < kMaxDevicesPerRegime; ++d) {
    if (((pending >> d) & 1) &&
        SaveRead(regime, kSaveVectors + static_cast<std::uint32_t>(d)) != 0) {
      return true;
    }
  }
  return false;
}

bool SeparationKernel::HasDeferredWork() const {
  if (!booted_) {
    return false;
  }
  const Word cur = CurrentRegime();
  if (cur == kIdleRegime) {
    return false;
  }
  const Word flags = SaveRead(cur, kSaveFlags);
  if (flags & kFlagResumeWork) {
    return true;
  }
  return (flags & kFlagInHandler) == 0 && HasDeliverableVector(cur);
}

bool SeparationKernel::OnBeforeExecute() {
  if (!HasDeferredWork()) {
    return false;
  }
  const int cur = CurrentRegime();
  const Word flags = SaveRead(cur, kSaveFlags);
  if (flags & kFlagResumeWork) {
    SaveWrite(cur, kSaveFlags, static_cast<Word>(flags & ~kFlagResumeWork));
    // AWAIT return ABI: R0 receives the pending mask.
    machine_.cpu().regs[0] = SaveRead(cur, kSavePending);
    if ((SaveRead(cur, kSaveFlags) & kFlagInHandler) == 0) {
      DeliverPendingInterrupt(cur);
    }
    return true;
  }
  DeliverPendingInterrupt(cur);
  return true;
}

void SeparationKernel::DispatchNext(int start_from) {
  const int n = static_cast<int>(config_.regimes.size());
  for (int i = 0; i < n; ++i) {
    const int candidate = ((start_from + i) % n + n) % n;
    if (RegimeRunnable(candidate)) {
      Bump64(kOffSwapCountLo);
      if (obs::Enabled()) {
        obs::Emit(obs::Category::kKernel, obs::Code::kDispatch, obs::kColourKernel,
                  machine_.tick(), static_cast<Word>(candidate));
        Counters().swaps.Add();
      }
      RestoreContext(candidate);
      return;
    }
  }
  EnterIdle();
}

void SeparationKernel::EnterIdle() {
  KWrite(kOffCurrentRegime, kIdleRegime);
  machine_.mmu().DisableAll(CpuMode::kUser);
  Psw idle;
  idle.set_mode(CpuMode::kKernel);
  idle.set_priority(0);
  machine_.cpu().psw = idle;
  if (AllRegimesHalted()) {
    machine_.set_halted(true);
  } else {
    machine_.set_waiting(true);
  }
}

// --- interrupt forwarding ----------------------------------------------------

void SeparationKernel::DeliverPendingInterrupt(int regime) {
  const Word pending = SaveRead(regime, kSavePending);
  int local = -1;
  Word vector = 0;
  for (int d = 0; d < kMaxDevicesPerRegime; ++d) {
    if ((pending >> d) & 1) {
      Word v = SaveRead(regime, kSaveVectors + static_cast<std::uint32_t>(d));
      if (v != 0) {
        local = d;
        vector = v;
        break;
      }
    }
  }
  if (local < 0) {
    return;  // nothing deliverable; bits stay pending
  }

  // Push PSW then PC onto the regime's own stack, enter its handler. This is
  // the "minor assistance" the paper says return-from-interrupt needs.
  CpuState& cpu = machine_.cpu();
  PhysAddr phys = 0;
  Word sp = cpu.sp();
  sp = static_cast<Word>(sp - 1);
  if (!RegimeVirtToPhys(regime, sp, &phys)) {
    FaultRegime("stack overflow during interrupt delivery");
    return;
  }
  machine_.PhysWrite(phys, cpu.psw.bits());
  sp = static_cast<Word>(sp - 1);
  if (!RegimeVirtToPhys(regime, sp, &phys)) {
    FaultRegime("stack overflow during interrupt delivery");
    return;
  }
  machine_.PhysWrite(phys, cpu.pc());
  cpu.set_sp(sp);
  cpu.set_pc(vector);

  // Delivery happens only at points anchored to the regime's own execution
  // (its AWAIT/RETI calls, its resume from AWAIT), so this event IS part of
  // the regime's canonical per-colour trace — unlike the forward below.
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kIrqDeliver, regime, machine_.tick(),
              static_cast<Word>(local), vector);
    Counters().irq_delivers.Add();
  }

  SaveWrite(regime, kSavePending, static_cast<Word>(pending & ~(1u << local)));
  SaveWrite(regime, kSaveFlags,
            static_cast<Word>(SaveRead(regime, kSaveFlags) | kFlagInHandler));
}

void SeparationKernel::OnInterrupt(int device_index) {
  SEP_CHECK(booted_);
  const int owner = DeviceOwner(device_index);
  if (owner < 0) {
    return;  // unowned device: interrupt dropped (config forbids this)
  }
  Bump64(kOffIrqForwardLo);

  const int local = LocalDeviceIndex(owner, device_index);
  // Colour-tagged with the owner for profiling, but NOT colour-observable:
  // the forward instant is device time (it depends on how the shared
  // processor interleaves), and the owner only learns of it at delivery.
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kIrqForward, owner, machine_.tick(),
              static_cast<Word>(local));
    Counters().irq_forwards.Add();
  }
  SaveWrite(owner, kSavePending,
            static_cast<Word>(SaveRead(owner, kSavePending) | (1u << local)));

  if (config_.faults.broadcast_interrupts) {
    // Injected defect: every regime learns of every interrupt.
    for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
      SaveWrite(static_cast<int>(r), kSavePending,
                static_cast<Word>(SaveRead(static_cast<int>(r), kSavePending) | 1u));
    }
  }

  const Word cur = CurrentRegime();
  if (cur == static_cast<Word>(owner) &&
      (SaveRead(owner, kSaveFlags) & kFlagInHandler) == 0) {
    DeliverPendingInterrupt(owner);
  } else if (cur == kIdleRegime && RegimeRunnable(owner)) {
    RestoreContext(owner);
  }
}

// --- traps / kernel calls ----------------------------------------------------

void SeparationKernel::OnTrap(const TrapInfo& info) {
  SEP_CHECK(booted_);
  SEP_CHECK(CurrentRegime() != kIdleRegime);

  switch (info.kind) {
    case TrapInfo::Kind::kIllegalInstruction:
      FaultRegime("illegal instruction");
      return;
    case TrapInfo::Kind::kMmuFault:
      FaultRegime(Format("memory violation at %04X", info.fault_addr));
      return;
    case TrapInfo::Kind::kTrapInstruction:
      break;
  }

  Bump64(kOffKernelCallLo);
  // One event per kernel call, tagged with the calling regime: the paper's
  // COLOUR(s) for a TRAP operation. a1 is R0 at entry (channel id for
  // SEND/RECV/STAT, local device for SETVEC) — entry arguments only, so the
  // trace carries exactly what the regime itself put there.
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kKernelCall, CurrentRegime(),
              machine_.tick(), info.code, machine_.cpu().regs[0]);
    Counters().calls.Add();
  }
  switch (info.code) {
    case kCallSwap:
      CallSwap();
      return;
    case kCallSend:
      CallSend();
      return;
    case kCallRecv:
      CallRecv();
      return;
    case kCallStat:
      CallStat();
      return;
    case kCallSetVec:
      CallSetVec();
      return;
    case kCallReti:
      CallReti();
      return;
    case kCallAwait:
      CallAwait();
      return;
    case kCallHalt:
      CallHaltRegime();
      return;
    case kCallGetId:
      CallGetId();
      return;
    case kCallSendv:
      CallSendv();
      return;
    case kCallRecvv:
      CallRecvv();
      return;
    case kCallRingPut:
      CallRingPut();
      return;
    case kCallRingGet:
      CallRingGet();
      return;
    case kCallRingStat:
      CallRingStat();
      return;
    default:
      FaultRegime(Format("unknown kernel call %u", info.code));
      return;
  }
}

void SeparationKernel::FaultRegime(const std::string& reason) {
  const int cur = CurrentRegime();
  SEP_LOG(kInfo) << "regime " << config_.regimes[static_cast<std::size_t>(cur)].name
                 << " faulted: " << reason;
  Bump64(kOffFaultCountLo);
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kRegimeFault, cur, machine_.tick());
    Counters().faults.Add();
  }
  SaveWrite(cur, kSaveFlags, static_cast<Word>(SaveRead(cur, kSaveFlags) | kFlagHalted));
  DispatchNext(cur + 1);
}

void SeparationKernel::CallSwap() {
  const int cur = CurrentRegime();
  SaveCurrentContext();
  DispatchNext(cur + 1);
}

std::uint32_t SeparationKernel::RingBase(int channel, int end) const {
  return ChannelRingOffset(config_, channel, end);
}

bool SeparationKernel::RingPush(std::uint32_t ring_base, std::uint32_t capacity, Word value) {
  if (capacity == 0) {
    return false;  // defensive: a zero-capacity ring has no slot arithmetic
  }
  const Word head = KRead(ring_base);
  const Word count = KRead(ring_base + 1);
  if (count >= capacity) {
    return false;
  }
  KWrite(ring_base + 2 + (head + count) % capacity, value);
  KWrite(ring_base + 1, static_cast<Word>(count + 1));
  return true;
}

bool SeparationKernel::RingIntact(std::uint32_t ring_base, std::uint32_t capacity) const {
  if (capacity == 0) {
    return false;  // nothing about a zero-capacity ring can be trusted
  }
  const Word head = KRead(ring_base);
  const Word count = KRead(ring_base + 1);
  return head < capacity && count <= capacity;
}

bool SeparationKernel::RingPop(std::uint32_t ring_base, std::uint32_t capacity, Word* value) {
  if (capacity == 0) {
    return false;  // defensive: never reached behind a RingIntact check
  }
  const Word head = KRead(ring_base);
  const Word count = KRead(ring_base + 1);
  if (count == 0) {
    return false;
  }
  *value = KRead(ring_base + 2 + head % capacity);
  KWrite(ring_base, static_cast<Word>((head + 1) % capacity));
  KWrite(ring_base + 1, static_cast<Word>(count - 1));
  return true;
}

void SeparationKernel::RingPushBatch(std::uint32_t ring_base, std::uint32_t capacity,
                                     const std::vector<Word>& words) {
  const std::uint32_t head = KRead(ring_base);
  const std::uint32_t count = KRead(ring_base + 1);
  for (std::size_t i = 0; i < words.size(); ++i) {
    KWrite(ring_base + 2 + (head + count + static_cast<std::uint32_t>(i)) % capacity,
           words[i]);
  }
  KWrite(ring_base + 1, static_cast<Word>(count + words.size()));
}

void SeparationKernel::RingPopBatch(std::uint32_t ring_base, std::uint32_t capacity,
                                    std::uint32_t n, std::vector<Word>& out) {
  const std::uint32_t head = KRead(ring_base);
  const std::uint32_t count = KRead(ring_base + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(KRead(ring_base + 2 + (head + i) % capacity));
  }
  KWrite(ring_base, static_cast<Word>((head + n) % capacity));
  KWrite(ring_base + 1, static_cast<Word>(count - n));
}

void SeparationKernel::NoteChannelStall(Word id, Word requested) {
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kKernel, obs::Code::kChannelStall, CurrentRegime(),
              machine_.tick(), id, requested);
    Counters().channel_stalls.Add();
  }
}

void SeparationKernel::CallSend() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int channel = cpu.regs[0];
  if (channel >= static_cast<int>(config_.channels.size()) ||
      config_.channels[static_cast<std::size_t>(channel)].sender != cur) {
    FaultRegime(Format("SEND on channel %d not owned as sender", channel));
    return;
  }
  int target = channel;
  if (config_.faults.misroute_channels && config_.channels.size() > 1) {
    target = (channel + 1) % static_cast<int>(config_.channels.size());
  }
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(target)].capacity;
  if (!RingIntact(RingBase(target, 0), cap)) {
    FaultRegime(Format("SEND found channel %d ring corrupted", target));
    return;
  }
  const bool pushed = RingPush(RingBase(target, 0), cap, cpu.regs[1]);
  if (!pushed) {
    NoteChannelStall(static_cast<Word>(channel), 1);
  }
  cpu.regs[0] = pushed ? 1 : 0;
}

void SeparationKernel::CallRecv() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int channel = cpu.regs[0];
  if (channel >= static_cast<int>(config_.channels.size()) ||
      config_.channels[static_cast<std::size_t>(channel)].receiver != cur) {
    FaultRegime(Format("RECV on channel %d not owned as receiver", channel));
    return;
  }
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(channel)].capacity;
  if (!RingIntact(RingBase(channel, 1), cap)) {
    FaultRegime(Format("RECV found channel %d ring corrupted", channel));
    return;
  }
  Word value = 0;
  if (RingPop(RingBase(channel, 1), cap, &value)) {
    cpu.regs[0] = 1;
    cpu.regs[1] = value;
  } else {
    cpu.regs[0] = 0;
  }
}

void SeparationKernel::CallStat() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int channel = cpu.regs[0];
  if (channel >= static_cast<int>(config_.channels.size())) {
    FaultRegime(Format("STAT on nonexistent channel %d", channel));
    return;
  }
  const ChannelConfig& cc = config_.channels[static_cast<std::size_t>(channel)];
  if (cc.sender != cur && cc.receiver != cur) {
    FaultRegime(Format("STAT on channel %d without endpoint rights", channel));
    return;
  }
  if ((cc.receiver == cur && !RingIntact(RingBase(channel, 1), cc.capacity)) ||
      (cc.sender == cur && !RingIntact(RingBase(channel, 0), cc.capacity))) {
    FaultRegime(Format("STAT found channel %d ring corrupted", channel));
    return;
  }
  cpu.regs[0] = (cc.receiver == cur) ? KRead(RingBase(channel, 1) + 1) : 0;
  cpu.regs[1] = (cc.sender == cur)
                    ? static_cast<Word>(cc.capacity - KRead(RingBase(channel, 0) + 1))
                    : 0;
}

void SeparationKernel::CallSetVec() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const Word local = cpu.regs[0];
  // Legal lines: the regime's local devices, then its ring doorbells.
  const std::size_t lines =
      config_.regimes[static_cast<std::size_t>(cur)].device_slots.size() +
      static_cast<std::size_t>(DoorbellLineCount(cur));
  if (local >= lines) {
    FaultRegime(Format("SETVEC for nonexistent local device %u", local));
    return;
  }
  // A handler address outside the regime's own partition can never be
  // executed; 0 is the "no handler" sentinel and stays legal.
  if (cpu.regs[1] >= config_.regimes[static_cast<std::size_t>(cur)].mem_words) {
    FaultRegime(Format("SETVEC handler %04X outside partition", cpu.regs[1]));
    return;
  }
  SaveWrite(cur, kSaveVectors + local, cpu.regs[1]);
}

void SeparationKernel::CallReti() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  if ((SaveRead(cur, kSaveFlags) & kFlagInHandler) == 0) {
    FaultRegime("RETI outside interrupt handler");
    return;
  }
  PhysAddr phys = 0;
  Word sp = cpu.sp();
  if (!RegimeVirtToPhys(cur, sp, &phys)) {
    FaultRegime("stack underflow in RETI");
    return;
  }
  const Word pc = machine_.PhysRead(phys);
  sp = static_cast<Word>(sp + 1);
  if (!RegimeVirtToPhys(cur, sp, &phys)) {
    FaultRegime("stack underflow in RETI");
    return;
  }
  const Word psw_bits = machine_.PhysRead(phys);
  sp = static_cast<Word>(sp + 1);

  cpu.set_sp(sp);
  cpu.set_pc(pc);
  Psw psw(psw_bits);
  psw.set_mode(CpuMode::kUser);
  cpu.psw = psw;
  SaveWrite(cur, kSaveFlags, static_cast<Word>(SaveRead(cur, kSaveFlags) & ~kFlagInHandler));

  // Chain delivery if more interrupts arrived meanwhile.
  if (SaveRead(cur, kSavePending) != 0) {
    DeliverPendingInterrupt(cur);
  }
}

void SeparationKernel::CallAwait() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const Word pending = SaveRead(cur, kSavePending);
  if (pending != 0) {
    cpu.regs[0] = pending;
    if ((SaveRead(cur, kSaveFlags) & kFlagInHandler) == 0) {
      DeliverPendingInterrupt(cur);
    }
    return;
  }
  SaveWrite(cur, kSaveFlags, static_cast<Word>(SaveRead(cur, kSaveFlags) | kFlagAwaiting));
  SaveCurrentContext();
  DispatchNext(cur + 1);
}

void SeparationKernel::CallHaltRegime() {
  const int cur = CurrentRegime();
  SaveCurrentContext();
  SaveWrite(cur, kSaveFlags, static_cast<Word>(SaveRead(cur, kSaveFlags) | kFlagHalted));
  DispatchNext(cur + 1);
}

void SeparationKernel::CallGetId() { machine_.cpu().regs[0] = CurrentRegime(); }

// --- batched channel fabric ---------------------------------------------------

bool SeparationKernel::ReadSgDescriptors(int regime, std::vector<SgExtent>& out,
                                         std::uint32_t* total) {
  const CpuState& cpu = machine_.cpu();
  const RegimeConfig& rc = config_.regimes[static_cast<std::size_t>(regime)];
  const Word table = cpu.regs[1];
  const Word n = cpu.regs[2];
  if (n == 0 || n > kMaxBatchDescriptors) {
    FaultRegime(Format("scatter-gather descriptor count %u out of range", n));
    return false;
  }
  if (static_cast<std::uint32_t>(table) + 2u * n > rc.mem_words) {
    FaultRegime(Format("descriptor table %04X outside partition", table));
    return false;
  }
  *total = 0;
  for (Word i = 0; i < n; ++i) {
    const Word addr = machine_.PhysRead(rc.mem_base + table + 2u * i);
    const Word len = machine_.PhysRead(rc.mem_base + table + 2u * i + 1);
    if (len == 0) {
      FaultRegime(Format("zero-length scatter-gather descriptor %u", i));
      return false;
    }
    if (static_cast<std::uint32_t>(addr) + len > rc.mem_words) {
      FaultRegime(Format("scatter-gather payload %04X+%u outside partition", addr, len));
      return false;
    }
    *total += len;
    if (*total > kMaxBatchWords) {
      FaultRegime(Format("scatter-gather batch exceeds %u words", kMaxBatchWords));
      return false;
    }
    out.push_back({rc.mem_base + addr, len});
  }
  return true;
}

void SeparationKernel::CallSendv() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int channel = cpu.regs[0];
  if (channel >= static_cast<int>(config_.channels.size()) ||
      config_.channels[static_cast<std::size_t>(channel)].sender != cur) {
    FaultRegime(Format("SENDV on channel %d not owned as sender", channel));
    return;
  }
  std::vector<SgExtent> extents;
  std::uint32_t total = 0;
  if (!ReadSgDescriptors(cur, extents, &total)) {
    return;  // already faulted
  }
  int target = channel;
  if (config_.faults.misroute_channels && config_.channels.size() > 1) {
    target = (channel + 1) % static_cast<int>(config_.channels.size());
  }
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(target)].capacity;
  const std::uint32_t base = RingBase(target, 0);
  // ONE intactness validation and one header read cover the whole batch.
  if (!RingIntact(base, cap)) {
    FaultRegime(Format("SENDV found channel %d ring corrupted", target));
    return;
  }
  const Word count = KRead(base + 1);
  if (static_cast<std::uint32_t>(count) + total > cap) {
    // All-or-nothing: a batch that does not fit is a backpressure stall, not
    // a partial transfer — the caller retries the whole batch.
    NoteChannelStall(static_cast<Word>(channel), static_cast<Word>(total));
    cpu.regs[0] = 0;
    return;
  }
  std::vector<Word> words;
  words.reserve(total);
  for (const SgExtent& extent : extents) {
    for (std::uint32_t i = 0; i < extent.words; ++i) {
      words.push_back(machine_.PhysRead(extent.base + i));
    }
  }
  RingPushBatch(base, cap, words);
  cpu.regs[0] = static_cast<Word>(total);
}

void SeparationKernel::CallRecvv() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int channel = cpu.regs[0];
  if (channel >= static_cast<int>(config_.channels.size()) ||
      config_.channels[static_cast<std::size_t>(channel)].receiver != cur) {
    FaultRegime(Format("RECVV on channel %d not owned as receiver", channel));
    return;
  }
  std::vector<SgExtent> extents;
  std::uint32_t total = 0;
  if (!ReadSgDescriptors(cur, extents, &total)) {
    return;  // already faulted
  }
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(channel)].capacity;
  const std::uint32_t base = RingBase(channel, 1);
  if (!RingIntact(base, cap)) {
    FaultRegime(Format("RECVV found channel %d ring corrupted", channel));
    return;
  }
  const Word count = KRead(base + 1);
  const std::uint32_t n = count < total ? count : total;
  std::vector<Word> words;
  words.reserve(n);
  RingPopBatch(base, cap, n, words);
  std::size_t w = 0;
  for (const SgExtent& extent : extents) {
    for (std::uint32_t i = 0; i < extent.words && w < words.size(); ++i) {
      machine_.PhysWrite(extent.base + i, words[w++]);
    }
  }
  cpu.regs[0] = static_cast<Word>(n);
}

void SeparationKernel::CallRingPut() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int ring = cpu.regs[0];
  if (ring >= static_cast<int>(config_.shared_rings.size()) ||
      config_.shared_rings[static_cast<std::size_t>(ring)].producer != cur) {
    FaultRegime(Format("RINGPUT on ring %d not owned as producer", ring));
    return;
  }
  const SharedRingConfig& rc = config_.shared_rings[static_cast<std::size_t>(ring)];
  const std::uint32_t ctl = SharedRingCtlOffset(config_, ring);
  const Word head = KRead(ctl + kSharedRingHead);
  const Word tail = KRead(ctl + kSharedRingTail);
  const std::uint32_t occupancy = static_cast<Word>(tail - head);
  if (occupancy > rc.capacity) {
    FaultRegime(Format("RINGPUT found ring %d indices corrupted", ring));
    return;
  }
  const Word n = cpu.regs[1];
  if (n == 0 || n > rc.capacity) {
    FaultRegime(Format("RINGPUT of %u words on ring %d", n, ring));
    return;
  }
  if (occupancy + n > rc.capacity) {
    NoteChannelStall(static_cast<Word>(0x8000 | ring), n);
    cpu.regs[0] = 0;
    return;
  }
  KWrite(ctl + kSharedRingTail, static_cast<Word>(tail + n));
  const Word after = static_cast<Word>(occupancy + n);
  if (after > KRead(ctl + kSharedRingWatermark)) {
    KWrite(ctl + kSharedRingWatermark, after);
  }
  cpu.regs[0] = 1;
  if (occupancy == 0) {
    // Empty -> non-empty: raise the consumer's doorbell line. Delivery stays
    // anchored to the CONSUMER's own execution (its AWAIT return, its RETI
    // chain, its resume from dispatch), exactly like a device interrupt.
    const int line = DoorbellLine(rc.consumer, ring);
    SaveWrite(rc.consumer, kSavePending,
              static_cast<Word>(SaveRead(rc.consumer, kSavePending) | (1u << line)));
  }
}

void SeparationKernel::CallRingGet() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int ring = cpu.regs[0];
  if (ring >= static_cast<int>(config_.shared_rings.size()) ||
      config_.shared_rings[static_cast<std::size_t>(ring)].consumer != cur) {
    FaultRegime(Format("RINGGET on ring %d not owned as consumer", ring));
    return;
  }
  const SharedRingConfig& rc = config_.shared_rings[static_cast<std::size_t>(ring)];
  const std::uint32_t ctl = SharedRingCtlOffset(config_, ring);
  const Word head = KRead(ctl + kSharedRingHead);
  const Word tail = KRead(ctl + kSharedRingTail);
  const std::uint32_t occupancy = static_cast<Word>(tail - head);
  if (occupancy > rc.capacity) {
    FaultRegime(Format("RINGGET found ring %d indices corrupted", ring));
    return;
  }
  const Word n = cpu.regs[1];
  if (n == 0 || n > occupancy) {
    // Releasing words that were never published would let the consumer walk
    // head past tail — a protocol violation, not flow control.
    FaultRegime(Format("RINGGET releasing %u of %u words on ring %d", n,
                       static_cast<unsigned>(occupancy), ring));
    return;
  }
  KWrite(ctl + kSharedRingHead, static_cast<Word>(head + n));
  cpu.regs[0] = 1;
  if (n == occupancy) {
    // Drained: lower the doorbell so the next publish re-raises it on its
    // empty -> non-empty edge.
    const int line = DoorbellLine(cur, ring);
    SaveWrite(cur, kSavePending,
              static_cast<Word>(SaveRead(cur, kSavePending) & ~(1u << line)));
  }
}

void SeparationKernel::CallRingStat() {
  const int cur = CurrentRegime();
  CpuState& cpu = machine_.cpu();
  const int ring = cpu.regs[0];
  if (ring >= static_cast<int>(config_.shared_rings.size())) {
    FaultRegime(Format("RINGSTAT on nonexistent ring %d", ring));
    return;
  }
  const SharedRingConfig& rc = config_.shared_rings[static_cast<std::size_t>(ring)];
  if (rc.producer != cur && rc.consumer != cur) {
    FaultRegime(Format("RINGSTAT on ring %d without endpoint rights", ring));
    return;
  }
  const std::uint32_t ctl = SharedRingCtlOffset(config_, ring);
  const std::uint32_t occupancy =
      static_cast<Word>(KRead(ctl + kSharedRingTail) - KRead(ctl + kSharedRingHead));
  if (occupancy > rc.capacity) {
    FaultRegime(Format("RINGSTAT found ring %d indices corrupted", ring));
    return;
  }
  cpu.regs[0] = static_cast<Word>(occupancy);
  cpu.regs[1] = static_cast<Word>(rc.capacity - occupancy);
  cpu.regs[2] = KRead(ctl + kSharedRingWatermark);
}

// --- checker support ----------------------------------------------------------

Result<> SeparationKernel::Adopt() {
  if (Result<> r = ValidateConfig(config_, machine_.memory().size(), machine_.device_count());
      !r.ok()) {
    return r;
  }
  machine_.set_client(this);
  booted_ = true;
  return Ok();
}

void SeparationKernel::AppendRingLogical(int channel, int end, std::vector<Word>& out) const {
  const std::uint32_t base = ChannelRingOffset(config_, channel, end);
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(channel)].capacity;
  const Word head = KRead(base);
  const Word count = KRead(base + 1);
  out.push_back(count);
  for (Word k = 0; k < count && k < cap; ++k) {
    out.push_back(KRead(base + 2 + (head + k) % cap));
  }
}

std::vector<Word> SeparationKernel::AbstractProjection(int colour) const {
  std::vector<Word> out;
  const RegimeConfig& rc = config_.regimes[static_cast<std::size_t>(colour)];
  out.reserve(rc.mem_words + 64);

  // 1. The regime's private memory partition.
  for (std::uint32_t i = 0; i < rc.mem_words; ++i) {
    out.push_back(machine_.memory().Read(rc.mem_base + i));
  }

  // 2. Register VALUES — live when active, from the save area otherwise.
  // The abstraction is location-independent: this is exactly why the SWAP
  // operation, which moves values between the CPU and the save areas, is
  // secure even though syntactic flow analysis rejects it.
  const bool active = CurrentRegime() == static_cast<Word>(colour);
  for (int i = 0; i < 8; ++i) {
    out.push_back(active ? machine_.cpu().regs[i]
                         : SaveRead(colour, kSaveRegs + static_cast<std::uint32_t>(i)));
  }
  out.push_back(active ? machine_.cpu().psw.bits() : SaveRead(colour, kSavePsw));

  // 3. Scheduling flags, normalized: "awaiting" and "resume-work" are the
  // same abstract blocked-in-AWAIT state.
  const Word flags = SaveRead(colour, kSaveFlags);
  out.push_back((flags & kFlagHalted) ? 1 : 0);
  out.push_back((flags & (kFlagAwaiting | kFlagResumeWork)) ? 1 : 0);
  out.push_back((flags & kFlagInHandler) ? 1 : 0);
  out.push_back(SaveRead(colour, kSavePending));
  for (std::uint32_t d = 0; d < kMaxDevicesPerRegime; ++d) {
    out.push_back(SaveRead(colour, kSaveVectors + d));
  }

  // 4. The regime's devices (registers, countdowns, environment queues,
  // interrupt line).
  for (int slot : rc.device_slots) {
    std::vector<Word> ds = machine_.device(slot).SnapshotState();
    out.push_back(static_cast<Word>(ds.size()));
    out.insert(out.end(), ds.begin(), ds.end());
  }

  // 5. The regime's channel ends, as logical queue contents.
  for (std::size_t i = 0; i < config_.channels.size(); ++i) {
    const ChannelConfig& ch = config_.channels[i];
    if (ch.sender == colour) {
      AppendRingLogical(static_cast<int>(i), 0, out);
    }
    if (ch.receiver == colour) {
      AppendRingLogical(static_cast<int>(i), 1, out);
    }
  }

  // 6. Shared rings the regime maps. The whole data window is in BOTH
  // endpoints' views (the producer maps it read-write, the consumer
  // read-only over every slot), as are the kernel-owned indices and the
  // watermark RINGSTAT surfaces. Like an uncut classic channel, a shared
  // ring is a deliberate shared object: the wire-cutting discipline, not the
  // perturbation argument, is what discharges it.
  for (std::size_t i = 0; i < config_.shared_rings.size(); ++i) {
    const SharedRingConfig& ring = config_.shared_rings[i];
    if (ring.producer != colour && ring.consumer != colour) {
      continue;
    }
    const std::uint32_t ctl = SharedRingCtlOffset(config_, static_cast<int>(i));
    out.push_back(KRead(ctl + kSharedRingHead));
    out.push_back(KRead(ctl + kSharedRingTail));
    out.push_back(KRead(ctl + kSharedRingWatermark));
    for (std::uint32_t k = 0; k < ring.capacity; ++k) {
      out.push_back(machine_.PhysRead(ring.data_base + k));
    }
  }
  return out;
}

void SeparationKernel::PerturbRing(int channel, int end, Rng& rng) {
  const std::uint32_t base = ChannelRingOffset(config_, channel, end);
  const std::uint32_t cap = config_.channels[static_cast<std::size_t>(channel)].capacity;
  KWrite(base, static_cast<Word>(rng.NextBelow(cap)));
  KWrite(base + 1, static_cast<Word>(rng.NextBelow(cap + 1)));
  for (std::uint32_t k = 0; k < cap; ++k) {
    KWrite(base + 2 + k, static_cast<Word>(rng.Next() & 0xFFFF));
  }
}

void SeparationKernel::PerturbNonColour(int colour, Rng& rng) {
  const Word cur = CurrentRegime();

  for (std::size_t r = 0; r < config_.regimes.size(); ++r) {
    if (static_cast<int>(r) == colour) {
      continue;
    }
    const RegimeConfig& rc = config_.regimes[r];
    for (std::uint32_t i = 0; i < rc.mem_words; ++i) {
      machine_.PhysWrite(rc.mem_base + i, static_cast<Word>(rng.Next() & 0xFFFF));
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
      SaveWrite(static_cast<int>(r), kSaveRegs + i, static_cast<Word>(rng.Next() & 0xFFFF));
    }
    SaveWrite(static_cast<int>(r), kSavePsw,
              static_cast<Word>((rng.Next() & 0x00FF) | 0x8000));
    SaveWrite(static_cast<int>(r), kSaveFlags, static_cast<Word>(rng.Next() & 0xF));
    SaveWrite(static_cast<int>(r), kSavePending,
              static_cast<Word>(rng.Next() &
                                ((1u << (rc.device_slots.size() +
                                         static_cast<std::size_t>(DoorbellLineCount(
                                             static_cast<int>(r))))) -
                                 1)));
    for (std::uint32_t d = 0; d < kMaxDevicesPerRegime; ++d) {
      SaveWrite(static_cast<int>(r), kSaveVectors + d,
                static_cast<Word>(rng.NextBelow(rc.mem_words)));
    }
    for (int slot : rc.device_slots) {
      machine_.device(slot).Perturb(rng);
    }
  }

  // Channel rings not in colour's view.
  for (std::size_t i = 0; i < config_.channels.size(); ++i) {
    const ChannelConfig& ch = config_.channels[i];
    const bool mine = ch.sender == colour || ch.receiver == colour;
    if (config_.cut_channels) {
      if (ch.sender != colour) {
        PerturbRing(static_cast<int>(i), 0, rng);
      }
      if (ch.receiver != colour) {
        PerturbRing(static_cast<int>(i), 1, rng);
      }
    } else if (!mine) {
      PerturbRing(static_cast<int>(i), 0, rng);
    }
  }

  // Shared rings touching neither endpoint == colour are entirely outside
  // the colour's view: randomize indices (keeping occupancy <= capacity, the
  // representation invariant) and the whole data window.
  for (std::size_t i = 0; i < config_.shared_rings.size(); ++i) {
    const SharedRingConfig& ring = config_.shared_rings[i];
    if (ring.producer == colour || ring.consumer == colour) {
      continue;
    }
    const std::uint32_t ctl = SharedRingCtlOffset(config_, static_cast<int>(i));
    const Word head = static_cast<Word>(rng.Next() & 0xFFFF);
    KWrite(ctl + kSharedRingHead, head);
    KWrite(ctl + kSharedRingTail,
           static_cast<Word>(head + rng.NextBelow(ring.capacity + 1)));
    KWrite(ctl + kSharedRingWatermark, static_cast<Word>(rng.NextBelow(ring.capacity + 1)));
    for (std::uint32_t k = 0; k < ring.capacity; ++k) {
      machine_.PhysWrite(ring.data_base + k, static_cast<Word>(rng.Next() & 0xFFFF));
    }
  }

  // Kernel-internal counters are in nobody's abstract view.
  KWrite(kOffSwapCountLo, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffSwapCountHi, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffIrqForwardLo, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffIrqForwardHi, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffKernelCallLo, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffKernelCallHi, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffFaultCountLo, static_cast<Word>(rng.Next() & 0xFFFF));
  KWrite(kOffFaultCountHi, static_cast<Word>(rng.Next() & 0xFFFF));

  // Live CPU registers belong to the current regime (or to nobody, when
  // idle). Keep the PSW priority/mode so interrupt deliverability — and
  // hence COLOUR(s) — is preserved.
  if (cur != static_cast<Word>(colour)) {
    CpuState& cpu = machine_.cpu();
    for (int i = 0; i < 8; ++i) {
      cpu.regs[i] = static_cast<Word>(rng.Next() & 0xFFFF);
    }
    if (cur != kIdleRegime) {
      Psw psw = cpu.psw;
      psw.set_bits(static_cast<Word>((psw.bits() & ~0x000F) | (rng.Next() & 0xF)));
      cpu.psw = psw;
    }
  }
}

}  // namespace sep
