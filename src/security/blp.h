// A Bell-LaPadula reference monitor.
//
// This is the policy engine used *inside* trusted components (the MLS
// file-server most prominently). It implements the ss-property (no read up),
// the *-property (no write down) and strong tranquility, with an audit trail
// of every decision. It also exposes the exemption mechanism ("trusted
// subject") so that the paper's spooler dilemma — a spooler that must delete
// lowly-classified spool files while running system-high — can be reproduced
// exactly: under plain BLP the deletion is denied; conventional kernelized
// systems resolve this by exempting the spooler from the *-property, which
// is precisely the 'trusted process' escape hatch the paper criticises.
#ifndef SRC_SECURITY_BLP_H_
#define SRC_SECURITY_BLP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/security/level.h"

namespace sep {

enum class AccessMode : std::uint8_t {
  kRead,     // observe only
  kAppend,   // alter only (blind write)
  kWrite,    // observe and alter
  kExecute,  // neither observe nor alter (in the BLP sense)
  kDelete,   // alter of the containing directory; treated as alter of object
};

const char* AccessModeName(AccessMode mode);

struct Subject {
  std::string name;
  SecurityLevel clearance;      // maximum level
  SecurityLevel current_level;  // level this session runs at; must be dominated by clearance
  bool trusted = false;         // exempt from the *-property (the escape hatch)
};

struct Object {
  std::string name;
  SecurityLevel classification;
};

struct AccessDecision {
  bool granted = false;
  std::string rule;  // which rule granted/denied, for the audit trail
};

struct AuditRecord {
  std::string subject;
  std::string object;
  AccessMode mode;
  bool granted;
  std::string rule;
};

class BlpMonitor {
 public:
  BlpMonitor() = default;

  Result<> AddSubject(Subject subject);
  Result<> AddObject(Object object);
  Result<> RemoveObject(const std::string& name);

  bool HasObject(const std::string& name) const { return objects_.count(name) != 0; }
  const Object* FindObject(const std::string& name) const;
  const Subject* FindSubject(const std::string& name) const;

  // Changes a subject's current level (login at a lower level). Denied if the
  // new level is not dominated by the clearance.
  Result<> SetCurrentLevel(const std::string& subject, const SecurityLevel& level);

  // The reference-monitor decision. Pure: does not mutate object state.
  AccessDecision Check(const std::string& subject, const std::string& object,
                       AccessMode mode);

  // Convenience wrapper returning a Result<>.
  Result<> Require(const std::string& subject, const std::string& object, AccessMode mode);

  const std::vector<AuditRecord>& audit() const { return audit_; }
  void ClearAudit() { audit_.clear(); }

  // Number of decisions that were denied; used by experiment summaries.
  std::size_t denied_count() const;

 private:
  AccessDecision Decide(const Subject& s, const Object& o, AccessMode mode) const;

  std::map<std::string, Subject> subjects_;
  std::map<std::string, Object> objects_;
  std::vector<AuditRecord> audit_;
};

}  // namespace sep

#endif  // SRC_SECURITY_BLP_H_
