// Security levels and the military security lattice.
//
// A security level is a pair (hierarchical classification, category set),
// ordered by the usual dominance relation: L1 dominates L2 iff L1's
// classification is >= L2's and L1's categories are a superset of L2's.
// This is the lattice underlying Bell-LaPadula [6] and the multilevel
// policies the paper's trusted components (file-server, printer-server,
// guard) enforce. The separation kernel itself knows nothing of it — that is
// the paper's central point — so this module is used only by components and
// by the policy-level tests.
#ifndef SRC_SECURITY_LEVEL_H_
#define SRC_SECURITY_LEVEL_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"

namespace sep {

// Hierarchical classifications in ascending order of sensitivity.
enum class Classification : std::uint8_t {
  kUnclassified = 0,
  kConfidential = 1,
  kSecret = 2,
  kTopSecret = 3,
};

const char* ClassificationName(Classification c);

// A compartment/category set, stored as a bitmask. Up to 16 named categories
// may be registered; the default registry provides NATO-flavoured examples.
class CategorySet {
 public:
  CategorySet() = default;
  explicit CategorySet(std::uint16_t bits) : bits_(bits) {}

  static CategorySet None() { return CategorySet(); }

  bool Contains(const CategorySet& other) const { return (bits_ & other.bits_) == other.bits_; }
  CategorySet Union(const CategorySet& other) const { return CategorySet(bits_ | other.bits_); }
  CategorySet Intersect(const CategorySet& other) const { return CategorySet(bits_ & other.bits_); }

  bool empty() const { return bits_ == 0; }
  std::uint16_t bits() const { return bits_; }

  bool operator==(const CategorySet& other) const = default;

 private:
  std::uint16_t bits_ = 0;
};

// A point in the security lattice.
class SecurityLevel {
 public:
  SecurityLevel() = default;
  SecurityLevel(Classification classification, CategorySet categories = CategorySet::None())
      : classification_(classification), categories_(categories) {}

  Classification classification() const { return classification_; }
  const CategorySet& categories() const { return categories_; }

  // The dominance partial order: *this >= other in the lattice.
  bool Dominates(const SecurityLevel& other) const;

  bool StrictlyDominates(const SecurityLevel& other) const {
    return Dominates(other) && !(*this == other);
  }

  // Two levels may be incomparable (disjoint category sets).
  bool ComparableWith(const SecurityLevel& other) const {
    return Dominates(other) || other.Dominates(*this);
  }

  // Least upper bound / greatest lower bound. Always defined: the lattice is
  // a complete product of a chain and a powerset lattice.
  SecurityLevel LeastUpperBound(const SecurityLevel& other) const;
  SecurityLevel GreatestLowerBound(const SecurityLevel& other) const;

  bool operator==(const SecurityLevel& other) const = default;

  // Renders e.g. "SECRET {NUC,CRYPTO}".
  std::string ToString() const;

  // Parses the ToString format; used by configuration files in examples.
  static Result<SecurityLevel> Parse(const std::string& text);

  static SecurityLevel SystemLow() { return SecurityLevel(Classification::kUnclassified); }
  static SecurityLevel SystemHigh();

 private:
  Classification classification_ = Classification::kUnclassified;
  CategorySet categories_;
};

// Registry of category names (bit -> name). A fixed global registry keeps
// levels value-typed and cheap; tests register their own names as needed.
class CategoryRegistry {
 public:
  static CategoryRegistry& Instance();

  // Returns the bitmask for `name`, registering it if new. At most 16
  // categories can exist; exceeding that is a configuration error.
  Result<CategorySet> GetOrRegister(const std::string& name);

  // Name for a single-bit mask; "?" if unknown.
  std::string NameOf(int bit) const;

  void Reset();

 private:
  CategoryRegistry() = default;
  std::string names_[16];
  int count_ = 0;
};

}  // namespace sep

#endif  // SRC_SECURITY_LEVEL_H_
