#include "src/security/level.h"

#include <algorithm>

#include "src/base/strings.h"

namespace sep {

const char* ClassificationName(Classification c) {
  switch (c) {
    case Classification::kUnclassified:
      return "UNCLASSIFIED";
    case Classification::kConfidential:
      return "CONFIDENTIAL";
    case Classification::kSecret:
      return "SECRET";
    case Classification::kTopSecret:
      return "TOP-SECRET";
  }
  return "?";
}

bool SecurityLevel::Dominates(const SecurityLevel& other) const {
  return classification_ >= other.classification_ && categories_.Contains(other.categories_);
}

SecurityLevel SecurityLevel::LeastUpperBound(const SecurityLevel& other) const {
  return SecurityLevel(std::max(classification_, other.classification_),
                       categories_.Union(other.categories_));
}

SecurityLevel SecurityLevel::GreatestLowerBound(const SecurityLevel& other) const {
  return SecurityLevel(std::min(classification_, other.classification_),
                       categories_.Intersect(other.categories_));
}

std::string SecurityLevel::ToString() const {
  std::string out = ClassificationName(classification_);
  if (!categories_.empty()) {
    out += " {";
    bool first = true;
    for (int bit = 0; bit < 16; ++bit) {
      if ((categories_.bits() >> bit) & 1) {
        if (!first) {
          out += ",";
        }
        out += CategoryRegistry::Instance().NameOf(bit);
        first = false;
      }
    }
    out += "}";
  }
  return out;
}

Result<SecurityLevel> SecurityLevel::Parse(const std::string& text) {
  std::string trimmed = Trim(text);
  std::string class_part = trimmed;
  std::string cat_part;
  std::size_t brace = trimmed.find('{');
  if (brace != std::string::npos) {
    std::size_t close = trimmed.find('}', brace);
    if (close == std::string::npos) {
      return Err("unterminated category set in security level: " + text);
    }
    class_part = Trim(trimmed.substr(0, brace));
    cat_part = trimmed.substr(brace + 1, close - brace - 1);
  }

  std::string upper = ToUpper(class_part);
  Classification classification;
  if (upper == "UNCLASSIFIED" || upper == "U") {
    classification = Classification::kUnclassified;
  } else if (upper == "CONFIDENTIAL" || upper == "C") {
    classification = Classification::kConfidential;
  } else if (upper == "SECRET" || upper == "S") {
    classification = Classification::kSecret;
  } else if (upper == "TOP-SECRET" || upper == "TS") {
    classification = Classification::kTopSecret;
  } else {
    return Err("unknown classification: " + class_part);
  }

  CategorySet categories;
  if (!cat_part.empty()) {
    for (const std::string& raw : Split(cat_part, ',')) {
      std::string name = Trim(raw);
      if (name.empty()) {
        continue;
      }
      Result<CategorySet> cat = CategoryRegistry::Instance().GetOrRegister(ToUpper(name));
      if (!cat.ok()) {
        return Err(cat.error());
      }
      categories = categories.Union(*cat);
    }
  }
  return SecurityLevel(classification, categories);
}

SecurityLevel SecurityLevel::SystemHigh() {
  return SecurityLevel(Classification::kTopSecret, CategorySet(0xFFFF));
}

CategoryRegistry& CategoryRegistry::Instance() {
  static CategoryRegistry registry;
  return registry;
}

Result<CategorySet> CategoryRegistry::GetOrRegister(const std::string& name) {
  for (int i = 0; i < count_; ++i) {
    if (names_[i] == name) {
      return CategorySet(static_cast<std::uint16_t>(1u << i));
    }
  }
  if (count_ >= 16) {
    return Err("category registry full (16 max); cannot register " + name);
  }
  names_[count_] = name;
  return CategorySet(static_cast<std::uint16_t>(1u << count_++));
}

std::string CategoryRegistry::NameOf(int bit) const {
  if (bit < 0 || bit >= count_) {
    return "?";
  }
  return names_[bit];
}

void CategoryRegistry::Reset() {
  for (auto& n : names_) {
    n.clear();
  }
  count_ = 0;
}

}  // namespace sep
