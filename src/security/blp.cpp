#include "src/security/blp.h"

namespace sep {

const char* AccessModeName(AccessMode mode) {
  switch (mode) {
    case AccessMode::kRead:
      return "read";
    case AccessMode::kAppend:
      return "append";
    case AccessMode::kWrite:
      return "write";
    case AccessMode::kExecute:
      return "execute";
    case AccessMode::kDelete:
      return "delete";
  }
  return "?";
}

Result<> BlpMonitor::AddSubject(Subject subject) {
  if (!subject.clearance.Dominates(subject.current_level)) {
    return Err("subject " + subject.name + " current level exceeds clearance");
  }
  if (subjects_.count(subject.name) != 0) {
    return Err("duplicate subject: " + subject.name);
  }
  subjects_.emplace(subject.name, std::move(subject));
  return Ok();
}

Result<> BlpMonitor::AddObject(Object object) {
  if (objects_.count(object.name) != 0) {
    return Err("duplicate object: " + object.name);
  }
  objects_.emplace(object.name, std::move(object));
  return Ok();
}

Result<> BlpMonitor::RemoveObject(const std::string& name) {
  if (objects_.erase(name) == 0) {
    return Err("no such object: " + name);
  }
  return Ok();
}

const Object* BlpMonitor::FindObject(const std::string& name) const {
  auto it = objects_.find(name);
  return it == objects_.end() ? nullptr : &it->second;
}

const Subject* BlpMonitor::FindSubject(const std::string& name) const {
  auto it = subjects_.find(name);
  return it == subjects_.end() ? nullptr : &it->second;
}

Result<> BlpMonitor::SetCurrentLevel(const std::string& subject, const SecurityLevel& level) {
  auto it = subjects_.find(subject);
  if (it == subjects_.end()) {
    return Err("no such subject: " + subject);
  }
  if (!it->second.clearance.Dominates(level)) {
    return Err("requested level " + level.ToString() + " exceeds clearance of " + subject);
  }
  it->second.current_level = level;
  return Ok();
}

AccessDecision BlpMonitor::Decide(const Subject& s, const Object& o, AccessMode mode) const {
  const SecurityLevel& sl = s.current_level;
  const SecurityLevel& ol = o.classification;
  switch (mode) {
    case AccessMode::kExecute:
      // Pure execute neither observes nor alters in the BLP sense.
      return {true, "execute-always"};
    case AccessMode::kRead:
      // ss-property: simple security — no read up.
      if (sl.Dominates(ol)) {
        return {true, "ss-property"};
      }
      return {false, "ss-property: subject level does not dominate object"};
    case AccessMode::kAppend:
      // Blind write: *-property requires the object level to dominate the
      // subject level (writes may flow up).
      if (ol.Dominates(sl)) {
        return {true, "*-property(append)"};
      }
      if (s.trusted && sl.Dominates(ol)) {
        // The exemption reaches only DOWNWARD: a trusted subject may alter
        // objects it could observe, never incomparable ones.
        return {true, "trusted-exemption(append)"};
      }
      return {false, "*-property: append down denied"};
    case AccessMode::kWrite:
      // Observe-and-alter: levels must be equal (both properties at once).
      if (sl == ol) {
        return {true, "ss+*-property(write)"};
      }
      if (s.trusted && sl.Dominates(ol)) {
        return {true, "trusted-exemption(write)"};
      }
      if (sl.Dominates(ol)) {
        return {false, "*-property: write down denied"};
      }
      return {false, "ss-property: write up would observe unseen object"};
    case AccessMode::kDelete:
      // Deleting an object alters it (and its container); the *-property
      // therefore forbids deleting objects *below* the subject's level. This
      // is exactly the spooler dilemma of the paper's Section 1.
      if (sl == ol) {
        return {true, "ss+*-property(delete)"};
      }
      if (s.trusted && sl.Dominates(ol)) {
        return {true, "trusted-exemption(delete)"};
      }
      if (sl.Dominates(ol)) {
        return {false, "*-property: delete down denied"};
      }
      return {false, "ss-property: delete up denied"};
  }
  return {false, "unknown mode"};
}

AccessDecision BlpMonitor::Check(const std::string& subject, const std::string& object,
                                 AccessMode mode) {
  AccessDecision decision;
  auto s = subjects_.find(subject);
  auto o = objects_.find(object);
  if (s == subjects_.end()) {
    decision = {false, "no such subject"};
  } else if (o == objects_.end()) {
    decision = {false, "no such object"};
  } else {
    decision = Decide(s->second, o->second, mode);
  }
  audit_.push_back({subject, object, mode, decision.granted, decision.rule});
  return decision;
}

Result<> BlpMonitor::Require(const std::string& subject, const std::string& object,
                             AccessMode mode) {
  AccessDecision d = Check(subject, object, mode);
  if (!d.granted) {
    return Err(subject + " " + AccessModeName(mode) + " " + object + " denied: " + d.rule);
  }
  return Ok();
}

std::size_t BlpMonitor::denied_count() const {
  std::size_t n = 0;
  for (const AuditRecord& r : audit_) {
    if (!r.granted) {
      ++n;
    }
  }
  return n;
}

}  // namespace sep
