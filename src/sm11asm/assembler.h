// A two-pass assembler for SM-11 assembly language.
//
// Regime programs in the examples and tests are written as assembly text so
// that they are realistic machine-code guests of the separation kernel, not
// C++ callbacks. The language is a compact MACRO-11 dialect:
//
//   ; comment to end of line
//   LABEL:  MOV #5, R0        ; immediate
//           MOV R0, (R1)      ; register deferred
//           ADD 2(R2), R3     ; indexed
//           MOV @0x3F00, R0   ; absolute
//           CMP R0, #10
//           BNE LOOP          ; branch to label
//           JSR SUB           ; bare expression = absolute target
//           TRAP 3            ; kernel call
//           HALT
//   BUF:    .WORD 0, 12, 0xFF ; literal words
//   MSG:    .ASCII "HI"       ; one word per character
//           .BLKW 16          ; reserve 16 zeroed words
//           .ORG 0x0100       ; set location counter (word address)
//           .EQU NAME, 42     ; define a symbol
//
// Expressions: decimal, 0x hex, 0o octal, 'c' character literals, symbols,
// '.' (current location), and left-associative + and -.
#ifndef SRC_SM11ASM_ASSEMBLER_H_
#define SRC_SM11ASM_ASSEMBLER_H_

#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace sep {

struct AssembledProgram {
  Word base = 0;                        // load address of the first word
  std::vector<Word> words;              // contiguous image from `base`
  std::map<std::string, Word> symbols;  // labels and .EQU definitions
  std::vector<std::string> listing;     // address/code/source lines
  // First word address of every source line that emitted words, so static
  // analysis can map a machine address back to the line (and its
  // annotations). Well-defined because overlapping .ORG regions are errors.
  std::map<Word, int> source_lines;

  Word EntryPoint() const { return base; }
  // Source line that emitted the word at `addr`, or -1 if none did.
  int LineOf(Word addr) const {
    auto it = source_lines.upper_bound(addr);
    return it == source_lines.begin() ? -1 : std::prev(it)->second;
  }
  Word SymbolOr(const std::string& name, Word fallback) const {
    auto it = symbols.find(name);
    return it == symbols.end() ? fallback : it->second;
  }
};

// Assembles `source`; on failure the error names the offending line.
Result<AssembledProgram> Assemble(const std::string& source);

}  // namespace sep

#endif  // SRC_SM11ASM_ASSEMBLER_H_
