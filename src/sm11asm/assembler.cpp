#include "src/sm11asm/assembler.h"

#include <cctype>
#include <optional>

#include "src/base/strings.h"
#include "src/machine/isa.h"

namespace sep {

namespace {

struct Line {
  int number = 0;
  std::string label;
  std::string mnemonic;      // upper-cased
  std::string operand_text;  // untrimmed remainder (may hold several operands)
  std::string raw;
};

// --- expression evaluation -------------------------------------------------

class ExprEvaluator {
 public:
  ExprEvaluator(const std::map<std::string, Word>& symbols, Word location)
      : symbols_(symbols), location_(location) {}

  Result<Word> Eval(std::string_view text) {
    text_ = text;
    pos_ = 0;
    Result<long> value = ParseSum();
    if (!value.ok()) {
      return Err(value.error());
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters in expression: " + std::string(text_));
    }
    return static_cast<Word>(*value & 0xFFFF);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Result<long> ParseSum() {
    Result<long> left = ParseTerm();
    if (!left.ok()) {
      return left;
    }
    long acc = *left;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || (text_[pos_] != '+' && text_[pos_] != '-')) {
        return acc;
      }
      char op = text_[pos_++];
      Result<long> right = ParseTerm();
      if (!right.ok()) {
        return right;
      }
      acc = (op == '+') ? acc + *right : acc - *right;
    }
  }

  Result<long> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Err("expected operand in expression");
    }
    char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      Result<long> inner = ParseTerm();
      if (!inner.ok()) {
        return inner;
      }
      return -*inner;
    }
    if (c == '.') {
      ++pos_;
      return static_cast<long>(location_);
    }
    if (c == '\'') {
      if (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '\'') {
        return Err("bad character literal");
      }
      long v = static_cast<unsigned char>(text_[pos_ + 1]);
      pos_ += 3;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return ParseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
                                     text_[pos_] == '_')) {
        ++pos_;
      }
      std::string name = ToUpper(text_.substr(start, pos_ - start));
      auto it = symbols_.find(name);
      if (it == symbols_.end()) {
        return Err("undefined symbol: " + name);
      }
      return static_cast<long>(it->second);
    }
    return Err(std::string("unexpected character in expression: ") + c);
  }

  Result<long> ParseNumber() {
    int base = 10;
    if (text_[pos_] == '0' && pos_ + 1 < text_.size()) {
      char next = static_cast<char>(std::tolower(static_cast<unsigned char>(text_[pos_ + 1])));
      if (next == 'x') {
        base = 16;
        pos_ += 2;
      } else if (next == 'o') {
        base = 8;
        pos_ += 2;
      }
    }
    long value = 0;
    bool any = false;
    while (pos_ < text_.size()) {
      char c = static_cast<char>(std::tolower(static_cast<unsigned char>(text_[pos_])));
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        break;
      }
      if (digit >= base) {
        return Err("digit out of range for base");
      }
      value = value * base + digit;
      any = true;
      ++pos_;
    }
    if (!any) {
      return Err("malformed number");
    }
    return value;
  }

  const std::map<std::string, Word>& symbols_;
  Word location_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- operand parsing ---------------------------------------------------------

struct ParsedOperand {
  OperandSpec spec;
  bool has_ext = false;
  bool pc_relative = false;  // extension word holds target - (ext_addr + 1)
  std::string ext_expr;      // evaluated in pass 2
};

std::optional<int> ParseRegisterName(std::string_view text) {
  std::string t = ToUpper(Trim(text));
  if (t == "SP") {
    return kSp;
  }
  if (t == "PC") {
    return kPc;
  }
  if (t.size() == 2 && t[0] == 'R' && t[1] >= '0' && t[1] <= '7') {
    return t[1] - '0';
  }
  return std::nullopt;
}

// Parses an operand. Position matters because the CPU's addressing mode 2
// means "immediate value" for sources and "absolute address" for
// destinations:
//   * `#expr` — immediate; sources only.
//   * `@expr` / bare `expr` as destination — absolute address (mode 2).
//   * `@expr` / bare `expr` as source — memory read, synthesized as
//     PC-relative indexed addressing (ext = target - PC), since mode 2
//     cannot express an absolute read.
Result<ParsedOperand> ParseOperand(std::string_view raw, bool is_src) {
  std::string text = Trim(raw);
  if (text.empty()) {
    return Err("empty operand");
  }
  ParsedOperand out;

  if (std::optional<int> reg = ParseRegisterName(text); reg.has_value()) {
    out.spec = {AddrMode::kReg, static_cast<std::uint8_t>(*reg)};
    return out;
  }
  if (text.front() == '(' && text.back() == ')') {
    std::optional<int> reg = ParseRegisterName(text.substr(1, text.size() - 2));
    if (!reg.has_value()) {
      return Err("bad register in deferred operand: " + text);
    }
    out.spec = {AddrMode::kRegDeferred, static_cast<std::uint8_t>(*reg)};
    return out;
  }
  if (text.front() == '#') {
    if (!is_src) {
      return Err("immediate (#) operand is only valid as a source: " + text);
    }
    out.spec = {AddrMode::kImmediate, 0};
    out.has_ext = true;
    out.ext_expr = text.substr(1);
    return out;
  }
  // expr(Rn) indexed form?
  if (text.back() == ')') {
    std::size_t open = text.rfind('(');
    if (open == std::string::npos || open == 0) {
      return Err("malformed indexed operand: " + text);
    }
    std::optional<int> reg = ParseRegisterName(text.substr(open + 1, text.size() - open - 2));
    if (!reg.has_value()) {
      return Err("bad register in indexed operand: " + text);
    }
    out.spec = {AddrMode::kIndexed, static_cast<std::uint8_t>(*reg)};
    out.has_ext = true;
    out.ext_expr = text.substr(0, open);
    return out;
  }
  // `@expr` or bare expression: a memory operand at an absolute address.
  std::string expr = text.front() == '@' ? text.substr(1) : text;
  if (is_src) {
    out.spec = {AddrMode::kIndexed, static_cast<std::uint8_t>(kPc)};
    out.pc_relative = true;
  } else {
    out.spec = {AddrMode::kImmediate, 0};
  }
  out.has_ext = true;
  out.ext_expr = expr;
  return out;
}

// Splits an operand field on commas that are not inside quotes/parens.
std::vector<std::string> SplitOperands(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  bool in_quote = false;
  for (char c : text) {
    if (c == '"') {
      in_quote = !in_quote;
    }
    if (!in_quote) {
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        --depth;
      } else if (c == ',' && depth == 0) {
        out.push_back(Trim(current));
        current.clear();
        continue;
      }
    }
    current.push_back(c);
  }
  std::string last = Trim(current);
  if (!last.empty() || !out.empty()) {
    out.push_back(last);
  }
  return out;
}

std::optional<Opcode> LookupMnemonic(const std::string& name) {
  static const std::map<std::string, Opcode> kTable = {
      {"HALT", Opcode::kHalt}, {"NOP", Opcode::kNop},   {"WAIT", Opcode::kWait},
      {"RTI", Opcode::kRti},   {"RTS", Opcode::kRts},   {"TRAP", Opcode::kTrap},
      {"MOV", Opcode::kMov},   {"ADD", Opcode::kAdd},   {"SUB", Opcode::kSub},
      {"CMP", Opcode::kCmp},   {"BIT", Opcode::kBit},   {"BIC", Opcode::kBic},
      {"BIS", Opcode::kBis},   {"XOR", Opcode::kXor},   {"CLR", Opcode::kClr},
      {"INC", Opcode::kInc},   {"DEC", Opcode::kDec},   {"NEG", Opcode::kNeg},
      {"COM", Opcode::kCom},   {"TST", Opcode::kTst},   {"ASR", Opcode::kAsr},
      {"ASL", Opcode::kAsl},   {"JMP", Opcode::kJmp},   {"JSR", Opcode::kJsr},
      {"BR", Opcode::kBr},     {"BEQ", Opcode::kBeq},   {"BNE", Opcode::kBne},
      {"BMI", Opcode::kBmi},   {"BPL", Opcode::kBpl},   {"BCS", Opcode::kBcs},
      {"BCC", Opcode::kBcc},   {"BVS", Opcode::kBvs},   {"BVC", Opcode::kBvc},
      {"BLT", Opcode::kBlt},   {"BGE", Opcode::kBge},   {"BGT", Opcode::kBgt},
      {"BLE", Opcode::kBle},
  };
  auto it = kTable.find(name);
  return it == kTable.end() ? std::nullopt : std::optional<Opcode>(it->second);
}

Result<Line> Lex(int number, const std::string& raw) {
  Line line;
  line.number = number;
  line.raw = raw;

  std::string text = raw;
  // Strip comment (respecting string literals).
  bool in_quote = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      in_quote = !in_quote;
    } else if (text[i] == ';' && !in_quote) {
      text = text.substr(0, i);
      break;
    }
  }
  text = Trim(text);
  if (text.empty()) {
    return line;
  }

  // Label?
  in_quote = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      in_quote = !in_quote;
    } else if (text[i] == ':' && !in_quote) {
      line.label = ToUpper(Trim(text.substr(0, i)));
      text = Trim(text.substr(i + 1));
      break;
    }
  }
  if (text.empty()) {
    return line;
  }

  std::size_t space = text.find_first_of(" \t");
  if (space == std::string::npos) {
    line.mnemonic = ToUpper(text);
  } else {
    line.mnemonic = ToUpper(text.substr(0, space));
    line.operand_text = Trim(text.substr(space + 1));
  }
  return line;
}

struct Chunk {
  Word address = 0;
  std::vector<Word> words;
};

class Assembler {
 public:
  Result<AssembledProgram> Run(const std::string& source) {
    std::vector<std::string> raw_lines = Split(source, '\n');
    std::vector<Line> lines;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      Result<Line> line = Lex(static_cast<int>(i + 1), raw_lines[i]);
      if (!line.ok()) {
        return Err(Format("line %zu: %s", i + 1, line.error().c_str()));
      }
      lines.push_back(*line);
    }

    // Pass 1: layout + symbol table.
    if (Result<> r = Pass1(lines); !r.ok()) {
      return Err(r.error());
    }
    // Pass 2: encode.
    if (Result<> r = Pass2(lines); !r.ok()) {
      return Err(r.error());
    }

    // Merge chunks into one contiguous image.
    AssembledProgram program;
    program.symbols = symbols_;
    program.listing = listing_;
    if (chunks_.empty()) {
      return program;
    }
    Word lo = 0xFFFF;
    Word hi = 0;
    for (const Chunk& c : chunks_) {
      if (c.words.empty()) {
        continue;
      }
      lo = std::min<Word>(lo, c.address);
      hi = std::max<Word>(hi, static_cast<Word>(c.address + c.words.size()));
    }
    if (hi <= lo) {
      return program;
    }
    program.base = lo;
    program.words.assign(hi - lo, 0);
    std::vector<bool> covered(hi - lo, false);
    for (const Chunk& c : chunks_) {
      for (std::size_t i = 0; i < c.words.size(); ++i) {
        std::size_t at = c.address - lo + i;
        if (covered[at]) {
          return Err(Format(".ORG overlap: address 0x%04X assembled twice",
                            static_cast<unsigned>(lo + at)));
        }
        covered[at] = true;
        program.words[at] = c.words[i];
      }
    }
    program.source_lines = source_lines_;
    return program;
  }

 private:
  Result<Word> Eval(const std::string& expr, Word location) {
    return ExprEvaluator(symbols_, location).Eval(expr);
  }

  // Word length of an instruction line (pass 1).
  Result<int> InstructionLength(const Line& line) {
    std::optional<Opcode> op = LookupMnemonic(line.mnemonic);
    if (!op.has_value()) {
      return Err("unknown mnemonic: " + line.mnemonic);
    }
    std::optional<OperandCount> shape = OpcodeShape(static_cast<std::uint8_t>(*op));
    std::vector<std::string> operands = SplitOperands(line.operand_text);
    switch (*shape) {
      case OperandCount::kZero:
        return 1;
      case OperandCount::kTrap:
      case OperandCount::kBranch:
        return 1;
      case OperandCount::kOne: {
        if (operands.size() != 1) {
          return Err(line.mnemonic + " takes one operand");
        }
        Result<ParsedOperand> dst = ParseOperand(operands[0], /*is_src=*/false);
        if (!dst.ok()) {
          return Err(dst.error());
        }
        return 1 + (dst->has_ext ? 1 : 0);
      }
      case OperandCount::kTwo: {
        if (operands.size() != 2) {
          return Err(line.mnemonic + " takes two operands");
        }
        Result<ParsedOperand> src = ParseOperand(operands[0], /*is_src=*/true);
        if (!src.ok()) {
          return Err(src.error());
        }
        Result<ParsedOperand> dst = ParseOperand(operands[1], /*is_src=*/false);
        if (!dst.ok()) {
          return Err(dst.error());
        }
        return 1 + (src->has_ext ? 1 : 0) + (dst->has_ext ? 1 : 0);
      }
    }
    return Err("bad opcode shape");
  }

  Result<> Pass1(const std::vector<Line>& lines) {
    Word location = 0;
    for (const Line& line : lines) {
      if (!line.label.empty()) {
        if (symbols_.count(line.label) != 0) {
          return Err(Format("line %d: duplicate symbol %s", line.number, line.label.c_str()));
        }
        symbols_[line.label] = location;
      }
      if (line.mnemonic.empty()) {
        continue;
      }
      if (line.mnemonic == ".ORG") {
        Result<Word> addr = Eval(line.operand_text, location);
        if (!addr.ok()) {
          return Err(Format("line %d: %s", line.number, addr.error().c_str()));
        }
        location = *addr;
        // A label on a .ORG line names the *new* location.
        if (!line.label.empty()) {
          symbols_[line.label] = location;
        }
        continue;
      }
      if (line.mnemonic == ".EQU") {
        std::vector<std::string> parts = SplitOperands(line.operand_text);
        if (parts.size() != 2) {
          return Err(Format("line %d: .EQU needs NAME, VALUE", line.number));
        }
        Result<Word> value = Eval(parts[1], location);
        if (!value.ok()) {
          return Err(Format("line %d: %s", line.number, value.error().c_str()));
        }
        symbols_[ToUpper(parts[0])] = *value;
        continue;
      }
      if (line.mnemonic == ".WORD") {
        location = static_cast<Word>(location + SplitOperands(line.operand_text).size());
        continue;
      }
      if (line.mnemonic == ".ASCII") {
        std::string text = Trim(line.operand_text);
        if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
          return Err(Format("line %d: .ASCII needs a quoted string", line.number));
        }
        location = static_cast<Word>(location + text.size() - 2);
        continue;
      }
      if (line.mnemonic == ".BLKW") {
        Result<Word> count = Eval(line.operand_text, location);
        if (!count.ok()) {
          return Err(Format("line %d: %s", line.number, count.error().c_str()));
        }
        location = static_cast<Word>(location + *count);
        continue;
      }
      Result<int> len = InstructionLength(line);
      if (!len.ok()) {
        return Err(Format("line %d: %s", line.number, len.error().c_str()));
      }
      location = static_cast<Word>(location + *len);
    }
    return Ok();
  }

  void Emit(Word word) { current_->words.push_back(word); }

  Word Here() const {
    return static_cast<Word>(current_->address + current_->words.size());
  }

  void StartChunk(Word address) {
    chunks_.push_back(Chunk{address, {}});
    current_ = &chunks_.back();
  }

  Result<> Pass2(const std::vector<Line>& lines) {
    StartChunk(0);
    for (const Line& line : lines) {
      if (line.mnemonic.empty()) {
        continue;
      }
      const Word line_start = Here();
      if (line.mnemonic == ".ORG") {
        Result<Word> addr = Eval(line.operand_text, Here());
        if (!addr.ok()) {
          return Err(Format("line %d: %s", line.number, addr.error().c_str()));
        }
        StartChunk(*addr);
        continue;
      }
      if (line.mnemonic == ".EQU") {
        continue;  // handled in pass 1
      }
      if (line.mnemonic == ".WORD") {
        for (const std::string& expr : SplitOperands(line.operand_text)) {
          Result<Word> value = Eval(expr, Here());
          if (!value.ok()) {
            return Err(Format("line %d: %s", line.number, value.error().c_str()));
          }
          Emit(*value);
        }
      } else if (line.mnemonic == ".ASCII") {
        std::string text = Trim(line.operand_text);
        for (std::size_t i = 1; i + 1 < text.size(); ++i) {
          Emit(static_cast<Word>(static_cast<unsigned char>(text[i])));
        }
      } else if (line.mnemonic == ".BLKW") {
        Result<Word> count = Eval(line.operand_text, Here());
        if (!count.ok()) {
          return Err(Format("line %d: %s", line.number, count.error().c_str()));
        }
        for (Word i = 0; i < *count; ++i) {
          Emit(0);
        }
      } else {
        if (Result<> r = EncodeInstruction(line); !r.ok()) {
          return r;
        }
      }
      listing_.push_back(Format("%s  %-30s ; words %u..%u", Octal(line_start).c_str(),
                                Trim(line.raw).c_str(), line_start,
                                static_cast<unsigned>(Here()) - 1));
      if (Here() != line_start) {
        source_lines_[line_start] = line.number;
      }
    }
    return Ok();
  }

  // Emits an operand extension word. PC-relative operands store the target
  // displaced by the PC value the CPU will hold after fetching this word.
  Result<> EmitExtension(const ParsedOperand& operand, const Line& line) {
    Result<Word> value = Eval(operand.ext_expr, Here());
    if (!value.ok()) {
      return Err(Format("line %d: %s", line.number, value.error().c_str()));
    }
    Word word = *value;
    if (operand.pc_relative) {
      word = static_cast<Word>(word - (Here() + 1));
    }
    Emit(word);
    return Ok();
  }

  Result<> EncodeInstruction(const Line& line) {
    std::optional<Opcode> op = LookupMnemonic(line.mnemonic);
    if (!op.has_value()) {
      return Err(Format("line %d: unknown mnemonic %s", line.number, line.mnemonic.c_str()));
    }
    std::optional<OperandCount> shape = OpcodeShape(static_cast<std::uint8_t>(*op));
    std::vector<std::string> operands = SplitOperands(line.operand_text);

    switch (*shape) {
      case OperandCount::kZero:
        if (!operands.empty() && !(operands.size() == 1 && operands[0].empty())) {
          return Err(Format("line %d: %s takes no operands", line.number, line.mnemonic.c_str()));
        }
        Emit(EncodeZeroOp(*op));
        return Ok();
      case OperandCount::kTrap: {
        Result<Word> code = Eval(line.operand_text, Here());
        if (!code.ok()) {
          return Err(Format("line %d: %s", line.number, code.error().c_str()));
        }
        if (*code > 0x3FF) {
          return Err(Format("line %d: trap code out of range", line.number));
        }
        Emit(EncodeTrap(*code));
        return Ok();
      }
      case OperandCount::kBranch: {
        Result<Word> target = Eval(line.operand_text, Here());
        if (!target.ok()) {
          return Err(Format("line %d: %s", line.number, target.error().c_str()));
        }
        // Offset is relative to the PC after the (one-word) instruction.
        int offset = static_cast<int>(static_cast<Word>(*target)) - (Here() + 1);
        if (offset < -128 || offset > 127) {
          return Err(Format("line %d: branch target out of range (%d words)", line.number,
                            offset));
        }
        Emit(EncodeBranch(*op, static_cast<std::int16_t>(offset)));
        return Ok();
      }
      case OperandCount::kOne: {
        if (operands.size() != 1) {
          return Err(Format("line %d: %s takes one operand", line.number, line.mnemonic.c_str()));
        }
        Result<ParsedOperand> dst = ParseOperand(operands[0], /*is_src=*/false);
        if (!dst.ok()) {
          return Err(Format("line %d: %s", line.number, dst.error().c_str()));
        }
        Emit(EncodeOneOp(*op, dst->spec));
        if (dst->has_ext) {
          if (Result<> r = EmitExtension(*dst, line); !r.ok()) {
            return r;
          }
        }
        return Ok();
      }
      case OperandCount::kTwo: {
        if (operands.size() != 2) {
          return Err(Format("line %d: %s takes two operands", line.number, line.mnemonic.c_str()));
        }
        Result<ParsedOperand> src = ParseOperand(operands[0], /*is_src=*/true);
        if (!src.ok()) {
          return Err(Format("line %d: %s", line.number, src.error().c_str()));
        }
        Result<ParsedOperand> dst = ParseOperand(operands[1], /*is_src=*/false);
        if (!dst.ok()) {
          return Err(Format("line %d: %s", line.number, dst.error().c_str()));
        }
        Emit(EncodeTwoOp(*op, src->spec, dst->spec));
        if (src->has_ext) {
          if (Result<> r = EmitExtension(*src, line); !r.ok()) {
            return r;
          }
        }
        if (dst->has_ext) {
          if (Result<> r = EmitExtension(*dst, line); !r.ok()) {
            return r;
          }
        }
        return Ok();
      }
    }
    return Err("unreachable");
  }

  std::map<std::string, Word> symbols_;
  std::vector<Chunk> chunks_;
  Chunk* current_ = nullptr;
  std::vector<std::string> listing_;
  std::map<Word, int> source_lines_;
};

}  // namespace

Result<AssembledProgram> Assemble(const std::string& source) { return Assembler().Run(source); }

}  // namespace sep
