// Trace and metrics exporters.
//
// Three renderings of a drained event list:
//   * Chrome trace-event JSON (chrome://tracing and Perfetto load it):
//     one timeline row per colour, instant events at machine-tick
//     timestamps;
//   * a flat human-readable text listing;
//   * the canonical per-colour trace — the security-relevant view: only
//     ColourObservable events of one colour, rendered WITHOUT timestamps
//     (position in the regime's own event stream is the only ordering a
//     private machine could reproduce). Byte-comparing this string across
//     deployments is the per-colour trace-equivalence check of
//     docs/OBSERVABILITY.md and EXPERIMENTS.md E17.
//
// Metrics export: flat "name value" text or a flat JSON object.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {
namespace obs {

// Stable human-readable name of an event code ("kernel-call", ...).
const char* CodeName(Code code);
const char* CategoryName(Category category);

// Chrome trace-event JSON. pid is fixed (one machine per export); tid is
// colour + 1 so Perfetto shows one row per regime plus row 0 for the kernel.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

// One line per event: "tick colour category code a0 a1".
std::string TraceText(const std::vector<TraceEvent>& events);

// Canonical per-colour trace (see file comment). Deterministic, timestamp-
// free; equality is byte equality.
std::string CanonicalColourTrace(const std::vector<TraceEvent>& events, int colour);

// Flat metrics dumps of the process-wide registry.
std::string MetricsText();
std::string MetricsJson();

}  // namespace obs
}  // namespace sep

#endif  // SRC_OBS_EXPORT_H_
