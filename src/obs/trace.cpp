#include "src/obs/trace.h"

namespace sep {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) : cells_(RoundUpPow2(capacity)) {
  mask_ = cells_.size() - 1;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TraceRing::TryPush(const TraceEvent& event) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        cell.event = event;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded `pos`; retry.
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool TraceRing::TryPop(TraceEvent* out) {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
        *out = cell.event;
        cell.seq.store(pos + cells_.size(), std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

void TraceRecorder::Start(std::size_t capacity) {
  g_trace_enabled.store(false, std::memory_order_seq_cst);
  ring_ = std::make_shared<TraceRing>(capacity);
  dropped_.store(0, std::memory_order_relaxed);
  g_trace_enabled.store(true, std::memory_order_seq_cst);
}

void TraceRecorder::Stop() { g_trace_enabled.store(false, std::memory_order_seq_cst); }

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> out;
  if (ring_ == nullptr) {
    return out;
  }
  TraceEvent event;
  while (ring_->TryPop(&event)) {
    out.push_back(event);
  }
  return out;
}

void TraceRecorder::Emit(const TraceEvent& event) {
  // ring_ is installed before the enabled flag flips, and instrumentation
  // sites only reach here through Enabled(); the copy keeps the ring alive
  // across a concurrent Start() replacing it.
  std::shared_ptr<TraceRing> ring = ring_;
  if (ring == nullptr) {
    return;
  }
  if (!ring->TryPush(event)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

TraceRecorder& Recorder() {
  static TraceRecorder recorder;
  return recorder;
}

}  // namespace obs
}  // namespace sep
