// Colour-tagged event tracing for the kernelized machine.
//
// Rushby's separation argument is about each regime's VIEW of the shared
// machine; this module makes a view observable. Every instrumented layer
// (kernel, machine, exhaustive checker, distributed network) emits small
// fixed-size events into a process-wide lock-free bounded ring buffer, and
// every event carries the regime colour on whose behalf the work was done
// (or kColourKernel for kernel-internal bookkeeping that is in nobody's
// abstract view — exactly the state PerturbNonColour is free to randomize).
//
// The colour tag is itself subject to the paper's security argument: the
// per-colour canonical trace (export.h) of a regime in the shared machine
// must be byte-identical to its trace when running alone — a trace that
// leaked another colour's activity would BE a channel. The trace-equivalence
// test (tests/obs_trace_equivalence_test.cpp) checks exactly this.
//
// Cost model: tracing must never touch Machine::RunThreaded's per-
// instruction hot path, so there are NO per-instruction trace points —
// only slow paths (traps, interrupts, kernel calls, cache refills) carry
// them, each guarded by a single relaxed atomic load + branch when tracing
// is disabled. Defining SEP_OBS_DISABLED at compile time removes even that.
// The ring itself is a Vyukov-style bounded MPMC queue: producers claim
// cells with a CAS and never block; a full ring drops events (counted)
// rather than stalling the machine.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/types.h"

namespace sep {
namespace obs {

// Colour of events performed by the kernel (or machine) on its own behalf:
// dispatch bookkeeping, MMU reprogramming, counter maintenance. Excluded
// from every per-colour view.
inline constexpr int kColourKernel = -1;

enum class Category : std::uint8_t {
  kKernel = 0,   // separation-kernel events
  kMachine = 1,  // SM-11 machine events (traps, interrupts, caches)
  kChecker = 2,  // exhaustive-checker progress
  kNet = 3,      // distributed network / reliable channels
};

// Event codes. The canonical per-colour trace (export.h) includes only the
// codes ColourObservable() admits: events anchored to the regime's OWN
// instruction/kernel-call stream. Device-time events (interrupt forwarding,
// device activity) are colour-tagged for profiling but excluded from the
// canonical view, because their position relative to the regime's stream
// depends on how the shared processor interleaves — the same reason Φ^c
// normalizes "awaiting" and "resume-work" into one abstract state.
enum class Code : std::uint16_t {
  // kernel (colour = regime the work is attributable to)
  kKernelCall = 0,    // a0 = trap code, a1 = R0 at entry
  kIrqDeliver = 1,    // a0 = local device index, a1 = handler vector
  kRegimeFault = 2,   // a0 = fault ordinal (see kernel.cpp), a1 = 0
  kIrqForward = 3,    // a0 = local device index (colour = owner; device-time)
  kDispatch = 4,      // a0 = incoming regime (kColourKernel)
  kMmuRemap = 5,      // a0 = regime whose mapping was programmed (kColourKernel)
  // Backpressure: a send-side call found its channel/ring without room.
  // Colour-tagged with the stalled sender for profiling but NOT colour-
  // observable: the caller already sees the stall in R0 = 0, and occupancy
  // depends on the peer's drain rate — putting it in the canonical view
  // would re-introduce the very interleaving-dependence Φ^c removes.
  kChannelStall = 6,  // a0 = channel id (0x8000|ring for shared rings), a1 = words

  // machine
  kMachineTrap = 16,      // a0 = TrapInfo kind, a1 = code/fault addr
  kMachineIrq = 17,       // a0 = device slot (colour = device owner; device-time)
  kPredecodeFill = 18,    // a0 = phys page of the refilled entry
  kPredecodeFlush = 19,   // cache disabled / cleared
  kSuperblockBuild = 20,      // a0 = entry PC, a1 = trace length (insns)
  kSuperblockInvalidate = 21, // a0 = entry PC (or count for a bulk flush)
  // checker
  kHeartbeat = 32,        // tick = states interned, a0 = level width (lo16), a1 = depth
  // net
  kNetRetransmit = 48,    // a0 = link/port id
  kNetTimeout = 49,       // a0 = link/port id
  kNetFaultInjected = 50, // a0 = fault kind (FaultCounters ordinal)
  kNetNodeCrash = 51,     // a0 = node id, a1 = restart delay (lo16)
  kNetNodeRestore = 52,   // a0 = node id, a1 = 1 cold / 0 warm
};

// True for events that belong to a regime's canonical per-colour view.
constexpr bool ColourObservable(Code code) {
  return code == Code::kKernelCall || code == Code::kIrqDeliver ||
         code == Code::kRegimeFault;
}

struct TraceEvent {
  std::uint64_t tick = 0;  // machine tick (or monotone site-local counter)
  std::int16_t colour = kColourKernel;
  Category category = Category::kKernel;
  Code code = Code::kKernelCall;
  Word a0 = 0;
  Word a1 = 0;
};

// Bounded lock-free MPMC ring (Vyukov). Producers never block: a full ring
// rejects the event. Draining is done by one thread at a time (the
// exporters), which is all the tooling needs.
class TraceRing {
 public:
  // Capacity is rounded up to a power of two; minimum 2.
  explicit TraceRing(std::size_t capacity);

  bool TryPush(const TraceEvent& event);
  bool TryPop(TraceEvent* out);

  std::size_t capacity() const { return cells_.size(); }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    TraceEvent event;
  };
  std::vector<Cell> cells_;
  std::uint64_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producers
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer
};

// The process-wide recorder: a TraceRing plus the global enabled flag the
// instrumentation sites check. Start() installs a fresh ring and enables
// recording; Stop() disables and leaves the ring drainable.
class TraceRecorder {
 public:
  // Default ring: 64Ki events (~1 MiB).
  void Start(std::size_t capacity = 1u << 16);
  void Stop();

  // Drains every recorded event, oldest first. Also callable while
  // recording (the ring is MPMC), but the exporters stop first.
  std::vector<TraceEvent> Drain();

  // Events rejected because the ring was full since Start().
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  void Emit(const TraceEvent& event);

 private:
  std::shared_ptr<TraceRing> ring_;
  std::atomic<std::uint64_t> dropped_{0};
  // Guards ring_ replacement against concurrent Emit: Start/Stop happen
  // while producers are quiescent in every current use, but keep the
  // pointer swap well-defined regardless.
  std::atomic<bool> draining_{false};
};

TraceRecorder& Recorder();

// The one flag every instrumentation site checks before doing anything.
extern std::atomic<bool> g_trace_enabled;

inline bool Enabled() {
#ifdef SEP_OBS_DISABLED
  return false;
#else
  return g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

// Convenience emitter used by all instrumentation sites. Near-zero when
// disabled: one relaxed load and a predictable branch.
inline void Emit(Category category, Code code, int colour, std::uint64_t tick, Word a0 = 0,
                 Word a1 = 0) {
#ifdef SEP_OBS_DISABLED
  (void)category;
  (void)code;
  (void)colour;
  (void)tick;
  (void)a0;
  (void)a1;
#else
  if (!Enabled()) {
    return;
  }
  TraceEvent event;
  event.tick = tick;
  event.colour = static_cast<std::int16_t>(colour);
  event.category = category;
  event.code = code;
  event.a0 = a0;
  event.a1 = a1;
  Recorder().Emit(event);
#endif
}

}  // namespace obs
}  // namespace sep

#endif  // SRC_OBS_TRACE_H_
