#include "src/obs/export.h"

#include "src/base/strings.h"

namespace sep {
namespace obs {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kKernelCall:
      return "kernel-call";
    case Code::kIrqDeliver:
      return "irq-deliver";
    case Code::kRegimeFault:
      return "regime-fault";
    case Code::kIrqForward:
      return "irq-forward";
    case Code::kDispatch:
      return "dispatch";
    case Code::kMmuRemap:
      return "mmu-remap";
    case Code::kChannelStall:
      return "channel-stall";
    case Code::kMachineTrap:
      return "machine-trap";
    case Code::kMachineIrq:
      return "machine-irq";
    case Code::kPredecodeFill:
      return "predecode-fill";
    case Code::kPredecodeFlush:
      return "predecode-flush";
    case Code::kHeartbeat:
      return "heartbeat";
    case Code::kNetRetransmit:
      return "net-retransmit";
    case Code::kNetTimeout:
      return "net-timeout";
    case Code::kNetFaultInjected:
      return "net-fault";
    case Code::kNetNodeCrash:
      return "net-node-crash";
    case Code::kNetNodeRestore:
      return "net-node-restore";
    case Code::kSuperblockBuild:
      return "superblock-build";
    case Code::kSuperblockInvalidate:
      return "superblock-invalidate";
  }
  return "unknown";
}

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kKernel:
      return "kernel";
    case Category::kMachine:
      return "machine";
    case Category::kChecker:
      return "checker";
    case Category::kNet:
      return "net";
  }
  return "unknown";
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) {
      out += ",";
    }
    out += Format(
        "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":1,\"tid\":%d,\"args\":{\"a0\":%u,\"a1\":%u}}",
        CodeName(e.code), CategoryName(e.category),
        static_cast<unsigned long long>(e.tick), static_cast<int>(e.colour) + 1,
        static_cast<unsigned>(e.a0), static_cast<unsigned>(e.a1));
  }
  out += "\n]}\n";
  return out;
}

std::string TraceText(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out += Format("%10llu  colour=%-3d %-8s %-15s a0=%-6u a1=%u\n",
                  static_cast<unsigned long long>(e.tick), static_cast<int>(e.colour),
                  CategoryName(e.category), CodeName(e.code), static_cast<unsigned>(e.a0),
                  static_cast<unsigned>(e.a1));
  }
  return out;
}

std::string CanonicalColourTrace(const std::vector<TraceEvent>& events, int colour) {
  std::string out;
  for (const TraceEvent& e : events) {
    if (static_cast<int>(e.colour) != colour || !ColourObservable(e.code)) {
      continue;
    }
    out += Format("%s %u %u\n", CodeName(e.code), static_cast<unsigned>(e.a0),
                  static_cast<unsigned>(e.a1));
  }
  return out;
}

std::string MetricsText() {
  std::string out;
  for (const MetricSample& sample : Metrics().Snapshot()) {
    out += Format("%s %lld\n", sample.name.c_str(), static_cast<long long>(sample.value));
  }
  return out;
}

std::string MetricsJson() {
  std::string out = "{\n";
  const std::vector<MetricSample> samples = Metrics().Snapshot();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out += Format("  \"%s\": %lld%s\n", samples[i].name.c_str(),
                  static_cast<long long>(samples[i].value),
                  i + 1 < samples.size() ? "," : "");
  }
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace sep
