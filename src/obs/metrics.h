// Process-wide counter/gauge metrics registry.
//
// Instrumented layers register named metrics once (function-local static
// lookup, mutex only on first touch) and bump them with relaxed atomics on
// slow paths. The registry is append-only for the process lifetime, so a
// returned Counter/Gauge reference stays valid forever and hot sites never
// re-acquire the registry lock.
//
// Naming convention: dotted lowercase paths, "layer.metric", e.g.
// "kernel.swaps", "machine.traps", "exhaustive.restore_count",
// "net.retransmits". docs/OBSERVABILITY.md lists every metric.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sep {
namespace obs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct MetricSample {
  std::string name;
  bool is_counter = true;
  std::int64_t value = 0;
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);

  // Name-sorted snapshot of every registered metric.
  std::vector<MetricSample> Snapshot() const;

  // Zeroes all counters and gauges (tests, and tool runs that want a clean
  // per-run dump). Registration survives; references stay valid.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  // node-based maps: values never move once created.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

MetricsRegistry& Metrics();

}  // namespace obs
}  // namespace sep

#endif  // SRC_OBS_METRICS_H_
