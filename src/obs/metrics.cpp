#include "src/obs/metrics.h"

#include <algorithm>

namespace sep {
namespace obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, true, static_cast<std::int64_t>(counter.value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, false, gauge.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge.Set(0);
  }
}

MetricsRegistry& Metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace obs
}  // namespace sep
