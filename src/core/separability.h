// Proof of Separability, as an executable checker.
//
// The paper's Appendix gives six conditions on a shared system with
// per-colour abstraction functions Φ^c. This module checks them
// mechanically over executions of a SharedSystem:
//
//   (1) COLOUR(s) = c  ⊃  Φ^c(op(s)) = ABOP^c(op)(Φ^c(s))
//       — the active regime's next abstract state is a function of its
//       current abstract state only. Checked by the two-run method: perturb
//       everything outside Φ^c, execute the same operation in both runs,
//       and demand equal Φ^c afterwards.
//   (2) COLOUR(s) ≠ c  ⊃  Φ^c(op(s)) = Φ^c(s)
//       — operations of other colours leave c's abstract state untouched.
//       Checked directly on every operation of the driving trace.
//   (3) Φ^c(s) = Φ^c(s')  ⊃  Φ^c(INPUT(s, i)) = Φ^c(INPUT(s', i))
//       — the effect of an input on c depends only on c's state.
//   (4) EXTRACT(c, i) = EXTRACT(c, i')  ⊃  Φ^c(INPUT(s,i)) = Φ^c(INPUT(s,i'))
//       — inputs differing only in other colours' components do not affect
//       c. Operationally: injecting input into a non-c device leaves Φ^c
//       unchanged.
//   (5) Φ^c(s) = Φ^c(s')  ⊃  EXTRACT(c, OUTPUT(s)) = EXTRACT(c, OUTPUT(s'))
//       — c's outputs are a function of c's state.
//   (6) COLOUR(s) = COLOUR(s') = c ∧ Φ^c(s) = Φ^c(s')  ⊃  NEXTOP(s) = NEXTOP(s')
//       — operation selection for c depends only on c's state.
//
// Device activity (the Appendix folds it into conditions 3–5 via the
// commuting requirements a/b) is checked as: stepping a c-coloured unit is
// deterministic given Φ^c (reported under condition 3) and stepping a non-c
// unit leaves Φ^c unchanged (reported under condition 4); outputs compared
// under condition 5.
//
// The check is exhaustive in spirit but sampled in practice: the system is
// driven along a randomized trace with random device input, and at sampled
// points the "for all states with equal Φ^c" quantifier is approximated by
// randomized perturbation of everything outside Φ^c. Any violation is a
// definite insecurity witness (it exhibits two concrete executions a regime
// can distinguish); absence of violations is evidence in the
// property-testing sense, standing in for the theorem proving the paper
// envisages.
#ifndef SRC_CORE_SEPARABILITY_H_
#define SRC_CORE_SEPARABILITY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/model/shared_system.h"

namespace sep {

struct CheckerOptions {
  std::uint64_t seed = 1;
  // Length of the driving trace (operations executed on the main run).
  int trace_steps = 1500;
  // Every `sample_every` operations, run the perturbation-based checks.
  int sample_every = 13;
  // Perturbed variants per sample point and colour.
  int perturb_variants = 2;
  // Probability (percent) of injecting a random input word into each unit
  // at each step of the driving trace.
  int input_rate_percent = 8;
  // Stop after this many violations.
  int max_violations = 16;
  // Check conditions 3/4/5 (device and input conditions).
  bool check_io_conditions = true;
};

struct Violation {
  int condition = 0;  // 1..6, the Appendix's numbering
  int colour = kColourNone;
  std::uint64_t step = 0;
  std::string description;
};

struct ConditionStats {
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};

struct SeparabilityReport {
  std::array<ConditionStats, 7> conditions{};  // [1..6] used
  std::vector<Violation> violations;
  std::uint64_t operations_executed = 0;

  bool Passed() const { return violations.empty(); }
  std::uint64_t TotalChecks() const;
  std::string Summary() const;
};

// Runs the checker against a copy of `system` (the argument is not
// disturbed).
SeparabilityReport CheckSeparability(const SharedSystem& system, const CheckerOptions& options);

}  // namespace sep

#endif  // SRC_CORE_SEPARABILITY_H_
