#include "src/core/separability.h"

#include "src/base/strings.h"

namespace sep {

namespace {

class CheckRun {
 public:
  CheckRun(const SharedSystem& initial, const CheckerOptions& options)
      : options_(options), rng_(options.seed), sys_(initial.Clone()) {}

  SeparabilityReport Run() {
    const int colours = sys_->ColourCount();

    for (int step = 0; step < options_.trace_steps && !Done(); ++step) {
      // Random environment input keeps the devices busy.
      for (int unit = 0; unit < sys_->UnitCount(); ++unit) {
        if (rng_.NextChance(static_cast<std::uint64_t>(options_.input_rate_percent), 100)) {
          sys_->InjectInput(unit, static_cast<Word>(rng_.Next() & 0xFFFF));
        }
      }

      // Sample points are chosen probabilistically (expected rate
      // 1/sample_every) rather than on a fixed modulus: a fixed stride can
      // alias with the system's own execution period and systematically
      // miss the one operation per cycle that exposes a leak.
      if (options_.sample_every > 0 &&
          rng_.NextChance(1, static_cast<std::uint64_t>(options_.sample_every))) {
        RunSampledChecks();
        if (Done()) {
          break;
        }
      }

      // --- the driving trace: one operation, with condition 2 inline ---
      const int active = sys_->Colour();
      std::vector<AbstractState> before(static_cast<std::size_t>(colours));
      for (int c = 0; c < colours; ++c) {
        if (c != active) {
          before[static_cast<std::size_t>(c)] = sys_->Abstract(c);
        }
      }
      sys_->ExecuteOperation();
      ++report_.operations_executed;
      for (int c = 0; c < colours; ++c) {
        if (c == active) {
          continue;
        }
        Check(2, c, sys_->Abstract(c) == before[static_cast<std::size_t>(c)],
              Format("operation of colour %d changed abstract state of %s", active,
                     sys_->ColourName(c).c_str()));
      }

      // Device phases on the main trace, with the cheap half of the device
      // conditions: non-owner views must be invariant.
      for (int unit = 0; unit < sys_->UnitCount(); ++unit) {
        const int owner = sys_->UnitColour(unit);
        const bool audit =
            options_.sample_every <= 0 ||
            rng_.NextChance(1, static_cast<std::uint64_t>(options_.sample_every));
        std::vector<AbstractState> pre;
        if (audit) {
          for (int c = 0; c < colours; ++c) {
            pre.push_back(sys_->Abstract(c));
          }
        }
        sys_->StepUnit(unit);
        if (audit) {
          for (int c = 0; c < colours; ++c) {
            if (c == owner) {
              continue;
            }
            Check(4, c, sys_->Abstract(c) == pre[static_cast<std::size_t>(c)],
                  Format("activity of unit %s changed abstract state of %s",
                         sys_->UnitName(unit).c_str(), sys_->ColourName(c).c_str()));
          }
        }
        // Keep output queues bounded; outputs are compared in the sampled
        // pair checks, not here.
        (void)sys_->DrainOutput(unit);
      }

      if (sys_->Finished()) {
        break;
      }
    }
    return report_;
  }

 private:
  bool Done() const {
    return static_cast<int>(report_.violations.size()) >= options_.max_violations;
  }

  void Check(int condition, int colour, bool ok, const std::string& description) {
    auto& stats = report_.conditions[static_cast<std::size_t>(condition)];
    ++stats.checks;
    if (!ok) {
      ++stats.violations;
      if (static_cast<int>(report_.violations.size()) < options_.max_violations) {
        report_.violations.push_back(
            Violation{condition, colour, report_.operations_executed, description});
      }
    }
  }

  // The perturbation-based checks: conditions 1 and 6 for the active
  // colour, 3/4/5 and device determinism for every colour.
  void RunSampledChecks() {
    const int colours = sys_->ColourCount();
    const int active = sys_->Colour();

    // Conditions 1 and 6.
    if (active != kColourNone) {
      for (int variant = 0; variant < options_.perturb_variants; ++variant) {
        std::unique_ptr<SharedSystem> a = sys_->Clone();
        std::unique_ptr<SharedSystem> b = sys_->Clone();
        b->PerturbOthers(active, rng_);
        if (b->Colour() != active) {
          // The perturbation changed which colour the next operation serves
          // (e.g. another regime's interrupt became deliverable); the
          // preconditions of conditions 1/6 no longer hold for this pair.
          continue;
        }
        Check(6, active, a->NextOperation() == b->NextOperation(),
              Format("NEXTOP for %s depends on other-coloured state: %s vs %s",
                     sys_->ColourName(active).c_str(), a->NextOperation().ToString().c_str(),
                     b->NextOperation().ToString().c_str()));
        a->ExecuteOperation();
        b->ExecuteOperation();
        Check(1, active, a->Abstract(active) == b->Abstract(active),
              Format("operation effect on %s depends on other-coloured state",
                     sys_->ColourName(active).c_str()));
      }
    }

    if (!options_.check_io_conditions) {
      return;
    }

    for (int c = 0; c < colours; ++c) {
      for (int variant = 0; variant < options_.perturb_variants; ++variant) {
        std::unique_ptr<SharedSystem> a = sys_->Clone();
        std::unique_ptr<SharedSystem> b = sys_->Clone();
        b->PerturbOthers(c, rng_);

        for (int unit = 0; unit < sys_->UnitCount(); ++unit) {
          const int owner = sys_->UnitColour(unit);
          const Word input = static_cast<Word>(rng_.Next() & 0xFFFF);
          if (owner == c) {
            // Condition 3: same c-coloured input, Φ^c-equal states -> same
            // resulting Φ^c.
            a->InjectInput(unit, input);
            b->InjectInput(unit, input);
            Check(3, c, a->Abstract(c) == b->Abstract(c),
                  Format("input to %s affects %s differently in Φ-equal states",
                         sys_->UnitName(unit).c_str(), sys_->ColourName(c).c_str()));
            // Device activity: deterministic given Φ^c (condition 3 family),
            // with outputs compared under condition 5.
            a->StepUnit(unit);
            b->StepUnit(unit);
            Check(3, c, a->Abstract(c) == b->Abstract(c),
                  Format("activity of %s is not a function of %s state",
                         sys_->UnitName(unit).c_str(), sys_->ColourName(c).c_str()));
            Check(5, c, a->DrainOutput(unit) == b->DrainOutput(unit),
                  Format("output of %s is not a function of %s state",
                         sys_->UnitName(unit).c_str(), sys_->ColourName(c).c_str()));
          } else {
            // Condition 4: inputs to other colours' devices are invisible
            // to c.
            const AbstractState pre = a->Abstract(c);
            a->InjectInput(unit, input);
            Check(4, c, a->Abstract(c) == pre,
                  Format("input to %s (owner %d) visible to %s",
                         sys_->UnitName(unit).c_str(), owner, sys_->ColourName(c).c_str()));
          }
        }
      }
    }
  }

  const CheckerOptions& options_;
  Rng rng_;
  std::unique_ptr<SharedSystem> sys_;
  SeparabilityReport report_;
};

}  // namespace

std::uint64_t SeparabilityReport::TotalChecks() const {
  std::uint64_t total = 0;
  for (const ConditionStats& s : conditions) {
    total += s.checks;
  }
  return total;
}

std::string SeparabilityReport::Summary() const {
  std::string out = Format("%llu operations, %llu checks: ",
                           static_cast<unsigned long long>(operations_executed),
                           static_cast<unsigned long long>(TotalChecks()));
  for (int cond = 1; cond <= 6; ++cond) {
    const ConditionStats& s = conditions[static_cast<std::size_t>(cond)];
    out += Format("C%d %llu/%llu ", cond, static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.checks));
  }
  out += Passed() ? "=> SEPARABLE" : "=> VIOLATIONS FOUND";
  return out;
}

SeparabilityReport CheckSeparability(const SharedSystem& system, const CheckerOptions& options) {
  return CheckRun(system, options).Run();
}

}  // namespace sep
