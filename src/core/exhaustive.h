// Exhaustive Proof of Separability for finite micro-systems.
//
// Where the sampled checker (separability.h) approximates the quantifiers
// of the six conditions with randomized trace pairs, this module decides
// them exactly for systems whose reachable state space fits in memory:
//
//   1. enumerate every state reachable from the initial state under every
//      operation, every environment input (a finite alphabet per unit) and
//      every unit activity;
//   2. check conditions (2) and (4) on every transition;
//   3. group reachable states by (COLOUR, Φ^c) and check conditions (1),
//      (3), (5) and (6) on EVERY pair within each group.
//
// A report with `complete == true` is a genuine finite-model proof of the
// six conditions over the reachable space — the closest executable
// analogue of the theorem the paper envisages. Systems that exceed the
// state budget get `complete == false` (the partial result is still sound:
// any violation found is real).
//
// Requires SharedSystem::FullState() support (a canonical serialization of
// the complete concrete state) and its inverse RestoreFullState(): the
// checker stores only the serialized words — deduplicated 64-word chunks in
// a flat arena — and reconstructs live systems on demand into thread-local
// scratch instances, so peak memory is O(serialized words), not O(live
// machines).
#ifndef SRC_CORE_EXHAUSTIVE_H_
#define SRC_CORE_EXHAUSTIVE_H_

#include <cstdint>
#include <vector>

#include "src/core/separability.h"
#include "src/model/shared_system.h"

namespace sep {

struct ExhaustiveOptions {
  // Budget on distinct reachable states; exceeding it aborts completeness.
  std::size_t max_states = 100000;
  // The environment alphabet: inputs 1..inputs_per_unit are injected into
  // each unit (plus the implicit "no input").
  int inputs_per_unit = 2;
  // Cap on Φ-group pair checks (groups are usually tiny; this guards
  // against quadratic blowup on degenerate abstractions).
  std::size_t max_pairs_per_group = 4096;
  int max_violations = 16;
  // Worker threads for frontier expansion and pair checking (0 = all
  // hardware threads). Expansion runs on a work-stealing frontier with a
  // sharded concurrent store; the report is nonetheless byte-identical for
  // every thread count: workers record pure per-state / per-pair outcomes
  // and a canonical replay renumbers states and reproduces the serial
  // schedule exactly (see docs/PERFORMANCE.md §6).
  int threads = 1;
  // Perturbs the steal-victim order (not the workload). Any seed must yield
  // a byte-identical report; the schedule-perturbation tests sweep this.
  std::uint64_t steal_seed = 0;
};

struct ExhaustiveReport {
  std::size_t states_explored = 0;
  std::size_t transitions = 0;
  std::size_t pairs_checked = 0;
  bool complete = false;
  std::array<ConditionStats, 7> conditions{};
  std::vector<Violation> violations;
  // Resident footprint of the compact state store (serialized words, chunk
  // tables and hash indexes) at the end of the run — the checker keeps no
  // live machine per state, so this is the scaling-relevant number.
  std::size_t peak_state_bytes = 0;
  // RestoreFullState calls of the SERIAL-EQUIVALENT schedule: the canonical
  // replay reconstructs exactly how many restores the serial dispatch order
  // performs, so this is deterministic for a given system and options
  // regardless of thread count or steal schedule. Actual per-worker restore
  // counts (which include stealing overshoot on truncated runs) are
  // exported as `exhaustive.workerN.restores` gauges instead.
  std::uint64_t restore_count = 0;
  // Exploration-balance diagnostics (schedule-dependent by nature; compare
  // them across runs only qualitatively). Also exported as gauges so
  // `sep_trace --format metrics` shows them.
  std::uint64_t steal_count = 0;          // successful deque steals, both phases
  std::size_t shard_max_load = 0;         // most populated state shard
  std::vector<std::uint64_t> worker_expanded;  // stealing-phase expansions per worker

  bool Passed() const { return violations.empty(); }
  std::string Summary() const;
};

ExhaustiveReport CheckSeparabilityExhaustive(const SharedSystem& system,
                                             const ExhaustiveOptions& options = {});

}  // namespace sep

#endif  // SRC_CORE_EXHAUSTIVE_H_
