// KernelizedSystem: the machine + separation kernel, viewed through the
// formal model interface of src/model/shared_system.h.
//
// This is the object the Proof-of-Separability checker operates on: the
// complete concrete system (CPU, memory, MMU, kernel data, devices) with
// COLOUR, NEXTOP, Φ^c and the per-colour perturbation realized by the
// kernel's knowledge of its own layout.
#ifndef SRC_CORE_KERNEL_SYSTEM_H_
#define SRC_CORE_KERNEL_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/kernel.h"
#include "src/machine/machine.h"
#include "src/model/shared_system.h"
#include "src/sm11asm/assembler.h"

namespace sep {

class KernelizedSystem : public SharedSystem {
 public:
  // Adopts an already-booted machine (used by Clone). Most callers use
  // SystemBuilder below.
  static Result<std::unique_ptr<KernelizedSystem>> Adopt(std::unique_ptr<Machine> machine,
                                                         KernelConfig config);

  // --- SharedSystem ---
  std::unique_ptr<SharedSystem> Clone() const override;
  int ColourCount() const override;
  std::string ColourName(int colour) const override;
  int Colour() const override;
  OperationId NextOperation() const override;
  void ExecuteOperation() override;
  AbstractState Abstract(int colour) const override;
  int UnitCount() const override;
  int UnitColour(int unit) const override;
  std::string UnitName(int unit) const override;
  void StepUnit(int unit) override;
  void InjectInput(int unit, Word value) override;
  std::vector<Word> DrainOutput(int unit) override;
  void PerturbOthers(int colour, Rng& rng) override;
  bool Finished() const override;
  std::optional<std::vector<Word>> FullState() const override;
  void AppendFullState(std::vector<Word>& out) const override;
  bool RestoreFullState(std::span<const Word> state) override;

  // --- direct access for tests, benches and examples ---
  Machine& machine() { return *machine_; }
  const Machine& machine() const { return *machine_; }
  SeparationKernel& kernel() { return *kernel_; }
  const SeparationKernel& kernel() const { return *kernel_; }

  // Runs whole machine steps (CPU phase + all devices) until all regimes
  // halt or `max_steps` is reached; returns steps taken.
  std::size_t Run(std::size_t max_steps);

 private:
  friend class SystemBuilder;

  KernelizedSystem(std::unique_ptr<Machine> machine, KernelConfig config);

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<SeparationKernel> kernel_;
};

// Declarative construction of a kernelized system: devices, regimes with
// assembly-source programs, channels — then Build() assembles programs,
// boots the kernel and returns the ready system.
class SystemBuilder {
 public:
  SystemBuilder();

  SystemBuilder& WithMemoryWords(std::size_t words);

  // Devices are added in machine slot order; returns the slot index.
  int AddDevice(std::unique_ptr<Device> device);

  // Adds a regime with a partition carved sequentially from physical memory.
  // `source` is SM-11 assembly; entry is the program's lowest address.
  // Returns the regime index.
  Result<int> AddRegime(const std::string& name, std::uint32_t mem_words,
                        const std::string& source, std::vector<int> device_slots = {});

  // Adds a regime from a pre-assembled word image.
  Result<int> AddRegimeImage(const std::string& name, std::uint32_t mem_words, Word entry,
                             std::vector<Word> image, std::vector<int> device_slots = {});

  // Declares a one-directional channel; returns the channel index.
  int AddChannel(const std::string& name, int sender, int receiver, std::uint32_t capacity = 16);

  // Declares a shared-memory ring channel (zero-copy doorbell fabric). The
  // data region is carved from physical memory at Build() time, after the
  // kernel partition; capacity must be a power of two in [8, 8192]. Returns
  // the ring index.
  int AddSharedRing(const std::string& name, int producer, int consumer,
                    std::uint32_t capacity = 256);

  SystemBuilder& CutChannels(bool cut);
  SystemBuilder& WithFaults(const KernelFaults& faults);

  Result<std::unique_ptr<KernelizedSystem>> Build();

 private:
  MachineConfig machine_config_;
  KernelConfig kernel_config_;
  std::vector<std::unique_ptr<Device>> devices_;
  struct Image {
    int regime;
    Word base;
    std::vector<Word> words;
  };
  std::vector<Image> images_;
  PhysAddr next_base_ = 0;
};

}  // namespace sep

#endif  // SRC_CORE_KERNEL_SYSTEM_H_
