#include "src/core/exhaustive.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

#include "src/base/arena.h"
#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"
#include "src/base/work_steal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

namespace {

// The checker is parallel but its report is deterministic BY CONSTRUCTION,
// in two layers:
//
//   1. Work-stealing exploration (schedule-dependent, result-pure). Workers
//      pull states from per-worker Chase–Lev deques (src/base/work_steal.h),
//      expand them, and intern every successor into a sharded
//      content-addressed store (ShardedStateStore below). A state's packed
//      id and shard are pure functions of its serialized content, never of
//      the interning thread. Each fresh state is expanded exactly once (the
//      thread whose intern was fresh re-enqueues it). Workers record, per
//      expanded state, the packed ids of its successors plus any FAILED
//      per-transition checks; passing checks are never materialized — the
//      check sequence of a successor is synthesizable from its ordinal.
//
//   2. Canonical replay (schedule-independent). After the stealing pool
//      drains, a single merge thread replays the exact level-synchronous
//      serial algorithm over the recorded successor lists: same FIFO id
//      assignment, same kLevelChunk dispatch granularity, same
//      overflow-before-intern and max_violations early-stop semantics, same
//      per-level heartbeat trace events. The replay therefore produces the
//      report — ids, violation order, truncation points, transition counts —
//      that a 1-thread run of the pre-stealing checker produced, regardless
//      of thread count or steal schedule. If the replay needs a state the
//      stealing phase never expanded (early stop drained it), it expands it
//      on demand on the merge thread. If the stealing phase overshot a
//      truncated run (discovered more states than the canonical set), the
//      store is rebuilt with only canonical states in canonical order so
//      peak_state_bytes stays schedule-independent too.
//
// Pair checking reuses the same stealing pool: the replay drives dispatch
// in waves and consumes outcomes with the serial kPairChunk stop semantics.
//
// restore_count reports the SERIAL-EQUIVALENT schedule cost (the number of
// RestoreFullState calls the canonical serial schedule performs), which is
// what makes it comparable across thread counts; the actual per-worker
// restore counts — which include stealing overshoot — are exported as
// per-worker gauges instead.
//
// No live SharedSystem is retained per explored state. Each state exists
// only as its serialized FullState() words; workers reconstruct live
// machines on demand (RestoreFullState) into per-worker scratch instances.

constexpr std::size_t kChunkWords = 64;
// States merged per canonical-replay batch. This is the granularity at
// which the serial checker dispatched expansion work, and the goldens pin
// its stop semantics (restore counts, truncation points), so the replay
// keeps it even though the stealing pool no longer batches.
constexpr std::size_t kLevelChunk = 64;
// Φ-equal pairs merged per canonical-replay batch (same role).
constexpr std::size_t kPairChunk = 512;

// Trace payload words are 16-bit; saturate rather than wrap so a reader can
// tell "at least 65535" from a small value.
Word SaturateWord(std::size_t value) {
  return static_cast<Word>(std::min<std::size_t>(value, 0xFFFF));
}

// Compact interned storage for serialized states, sharded for concurrent
// growth. Serializations are cut into kChunkWords-word chunks at fixed
// offsets; each distinct chunk is stored once. Chunks and states live in
// separate shard spaces, each routed by the top bits of the content hash
// (ShardForHash), so the layout of a finished store is a pure function of
// the state SET — identical for every steal schedule.
//
// A state record is its packed chunk-ref list plus exact word count. Because
// chunk ids are content-addressed within a run, two equal serializations
// always produce identical ref lists, so state equality is a cheap ref-list
// memcmp that never touches the chunk shards (no nested locks).
//
// Capacity determinism: every growable vector starts from a fixed reserved
// base large enough that growth is pure doubling (appends are ≤ kChunkWords
// words), making each shard's capacity — and thus bytes() — a function of
// its final contents, not of insertion order.
class ShardedStateStore {
 public:
  ShardedStateStore() {
    for (std::size_t s = 0; s < kShardCount; ++s) {
      state_data_[s].chunk_refs.reserve(1024);
      state_data_[s].ref_offsets.reserve(256);
      state_data_[s].lens.reserve(256);
      state_data_[s].hashes.reserve(256);
      chunk_data_[s].words.reserve(4096);
      chunk_data_[s].offsets.reserve(256);
      chunk_data_[s].hashes.reserve(256);
    }
  }

  std::size_t states() const { return state_count_.load(std::memory_order_relaxed); }

  // Any thread. Returns the packed id of the chunk with this content,
  // interning it if new.
  std::uint32_t InternChunk(std::uint64_t hash, const Word* words, std::size_t count) {
    const std::size_t s = ShardForHash(hash);
    ChunkShardData& d = chunk_data_[s];
    const auto [packed, fresh] = chunk_index_.FindOrInsert(
        hash,
        [&](std::int32_t local) {
          const std::size_t i = static_cast<std::size_t>(local);
          return d.hashes[i] == hash && d.offsets[i + 1] - d.offsets[i] == count &&
                 std::memcmp(d.words.data() + d.offsets[i], words, count * sizeof(Word)) == 0;
        },
        [&]() {
          const std::size_t local = d.hashes.size();
          SEP_CHECK(local <= kShardLocalMax);
          d.words.insert(d.words.end(), words, words + count);
          d.offsets.push_back(static_cast<std::uint32_t>(d.words.size()));
          d.hashes.push_back(hash);
          return local;
        },
        [&](std::int32_t existing) { return d.hashes[static_cast<std::size_t>(existing)]; });
    (void)fresh;
    return static_cast<std::uint32_t>(packed);
  }

  struct InternedState {
    std::int32_t id;
    bool fresh;
  };

  // Any thread. `refs` is the state's packed chunk-ref list; `len` its exact
  // word count; `hash` the hash of the full serialization.
  InternedState InternState(std::uint64_t hash, const std::uint32_t* refs, std::size_t nrefs,
                            std::size_t len) {
    const std::size_t s = ShardForHash(hash);
    StateShardData& d = state_data_[s];
    const auto [packed, fresh] = state_index_.FindOrInsert(
        hash,
        [&](std::int32_t local) {
          const std::size_t i = static_cast<std::size_t>(local);
          return d.hashes[i] == hash && d.lens[i] == len &&
                 d.ref_offsets[i + 1] - d.ref_offsets[i] == nrefs &&
                 std::memcmp(d.chunk_refs.data() + d.ref_offsets[i], refs,
                             nrefs * sizeof(std::uint32_t)) == 0;
        },
        [&]() {
          const std::size_t local = d.hashes.size();
          SEP_CHECK(local <= kShardLocalMax);
          d.chunk_refs.insert(d.chunk_refs.end(), refs, refs + nrefs);
          d.ref_offsets.push_back(static_cast<std::uint32_t>(d.chunk_refs.size()));
          d.lens.push_back(static_cast<std::uint32_t>(len));
          d.hashes.push_back(hash);
          return local;
        },
        [&](std::int32_t existing) { return d.hashes[static_cast<std::size_t>(existing)]; });
    if (fresh) {
      state_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return {packed, fresh};
  }

  // After the last intern, lock-free reads: the phase barrier between
  // exploration and pair checking provides the happens-before edge.
  void Freeze() { frozen_ = true; }

  // Reconstructs state `packed`'s serialized words into `out` (its chunk-ref
  // list lands in `refs`). Thread-safe: locks shards unless frozen.
  void MaterializeState(std::int32_t packed, std::vector<std::uint32_t>& refs,
                        std::vector<Word>& out) const {
    const std::size_t s = ShardOfId(packed);
    const std::size_t local = LocalOfId(packed);
    const StateShardData& d = state_data_[s];
    std::size_t len = 0;
    {
      std::unique_lock<std::mutex> lock;
      if (!frozen_) {
        lock = std::unique_lock<std::mutex>(state_index_.shard(s).mu);
      }
      refs.assign(d.chunk_refs.begin() + d.ref_offsets[local],
                  d.chunk_refs.begin() + d.ref_offsets[local + 1]);
      len = d.lens[local];
    }
    out.clear();
    out.reserve(len);
    for (const std::uint32_t ref : refs) {
      const std::size_t cs = ShardOfId(static_cast<std::int32_t>(ref));
      const std::size_t cl = LocalOfId(static_cast<std::int32_t>(ref));
      const ChunkShardData& cd = chunk_data_[cs];
      std::unique_lock<std::mutex> lock;
      if (!frozen_) {
        lock = std::unique_lock<std::mutex>(chunk_index_.shard(cs).mu);
      }
      out.insert(out.end(), cd.words.begin() + cd.offsets[cl], cd.words.begin() + cd.offsets[cl + 1]);
    }
    SEP_CHECK(out.size() == len);
  }

  std::uint64_t StateHash(std::int32_t packed) const {
    return state_data_[ShardOfId(packed)].hashes[LocalOfId(packed)];
  }

  std::size_t shard_max_load() const { return state_index_.max_load(); }

  // Resident footprint: arenas, per-state tables and hash indexes.
  std::size_t bytes() const {
    std::size_t total = state_index_.bytes() + chunk_index_.bytes();
    for (std::size_t s = 0; s < kShardCount; ++s) {
      const StateShardData& sd = state_data_[s];
      const ChunkShardData& cd = chunk_data_[s];
      total += sd.chunk_refs.capacity() * sizeof(std::uint32_t) +
               sd.ref_offsets.capacity() * sizeof(std::uint32_t) +
               sd.lens.capacity() * sizeof(std::uint32_t) +
               sd.hashes.capacity() * sizeof(std::uint64_t) +
               cd.words.capacity() * sizeof(Word) +
               cd.offsets.capacity() * sizeof(std::uint32_t) +
               cd.hashes.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

 private:
  struct StateShardData {
    // State i's chunk refs occupy chunk_refs[ref_offsets[i] ..
    // ref_offsets[i + 1]).
    std::vector<std::uint32_t> chunk_refs;
    std::vector<std::uint32_t> ref_offsets{0};
    std::vector<std::uint32_t> lens;
    std::vector<std::uint64_t> hashes;
  };
  struct ChunkShardData {
    // Chunk i occupies words[offsets[i] .. offsets[i + 1]).
    std::vector<Word> words;
    std::vector<std::uint32_t> offsets{0};
    std::vector<std::uint64_t> hashes;
  };

  ShardedIndex state_index_;
  ShardedIndex chunk_index_;
  std::array<StateShardData, kShardCount> state_data_;
  std::array<ChunkShardData, kShardCount> chunk_data_;
  std::atomic<std::size_t> state_count_{0};
  bool frozen_ = false;
};

// Per-worker direct-mapped cache of hot chunks. Most successors of one
// state share almost all chunks with it, so this makes the common-chunk
// intern path lock-free. Sound by construction: a hit requires a full
// content memcmp, never hash identity alone — a silent collision in a
// verification tool is not an acceptable failure mode.
struct ChunkCache {
  static constexpr std::size_t kEntries = 512;
  struct Entry {
    std::uint64_t hash = 0;
    std::int64_t ref = -1;
    std::uint32_t len = 0;
  };
  std::vector<Entry> entries = std::vector<Entry>(kEntries);
  std::vector<Word> words = std::vector<Word>(kEntries * kChunkWords);
};

std::uint32_t InternChunkCached(ShardedStateStore& store, ChunkCache& cache, const Word* words,
                                std::size_t count) {
  const std::uint64_t hash = HashWords(words, count);
  // Shard routing consumes the TOP hash bits; the cache slot uses the low
  // bits so cache placement and shard placement stay independent.
  ChunkCache::Entry& e = cache.entries[hash & (ChunkCache::kEntries - 1)];
  Word* const slot = cache.words.data() + (hash & (ChunkCache::kEntries - 1)) * kChunkWords;
  if (e.ref >= 0 && e.hash == hash && e.len == count &&
      std::memcmp(slot, words, count * sizeof(Word)) == 0) {
    return static_cast<std::uint32_t>(e.ref);
  }
  const std::uint32_t ref = store.InternChunk(hash, words, count);
  e.hash = hash;
  e.ref = ref;
  e.len = static_cast<std::uint32_t>(count);
  std::memcpy(slot, words, count * sizeof(Word));
  return ref;
}

// One FAILED check, recorded by a worker. Passing checks are never stored:
// the canonical replay synthesizes the full check sequence (it is a pure
// function of the successor ordinal / pair-task structure) and splices the
// recorded failures in at their ordinal positions.
struct FailRec {
  std::uint32_t ordinal = 0;  // check position within the expansion / task
  std::int16_t condition = 0;
  std::int16_t colour = kColourNone;
  std::string description;
};

// One expanded state: a slice of the owning worker's flat succs/fails logs.
struct ExpandRec {
  std::int32_t from = -1;  // packed state id
  std::uint32_t succ_begin = 0;
  std::uint32_t succ_end = 0;
  std::uint32_t fail_begin = 0;
  std::uint32_t fail_end = 0;
};

// Append-only per-worker recording; owned by exactly one pool thread during
// exploration, read by the merge thread after the pool barrier.
struct WorkerLog {
  std::vector<ExpandRec> recs;
  std::vector<std::int32_t> succs;        // packed successor ids
  std::vector<std::uint8_t> succ_checks;  // checks evaluated per successor
  std::vector<FailRec> fails;             // ordinal = successor ordinal
};

class ExhaustiveRun {
 public:
  ExhaustiveRun(const SharedSystem& initial, const ExhaustiveOptions& options)
      : options_(options),
        initial_(initial.Clone()),
        store_(std::make_unique<ShardedStateStore>()),
        pool_(options.threads) {
    scratch_.resize(static_cast<std::size_t>(pool_.size()));
    logs_.resize(static_cast<std::size_t>(pool_.size()));
    colours_ = initial_->ColourCount();
    units_ = initial_->UnitCount();
    // Successors per expansion: the operation, each input value into each
    // unit, each unit's activity. Constant per system/options, which is what
    // lets the replay reconstruct the serial restore schedule exactly.
    fanout_ = 1 + static_cast<std::size_t>(units_) *
                      static_cast<std::size_t>(options_.inputs_per_unit) +
              static_cast<std::size_t>(units_);
  }

  ExhaustiveReport Run() {
    std::optional<std::vector<Word>> init_key = initial_->FullState();
    if (!init_key.has_value()) {
      report_.violations.push_back(
          {0, kColourNone, 0, "system does not support FullState(); exhaustive mode needs it"});
      return std::move(report_);
    }
    // Probe restore support once, by restoring the initial state onto a
    // throwaway clone (self-restore would mask asymmetric encodings).
    if (!initial_->Clone()->RestoreFullState(*init_key)) {
      report_.violations.push_back({0, kColourNone, 0,
                                    "system does not support RestoreFullState(); the compact "
                                    "exhaustive checker needs it"});
      return std::move(report_);
    }

    const std::int32_t initial_id = InternKey(*init_key);
    Explore(initial_id);
    BuildLocator();
    ReplayExplore(initial_id);
    if (canon_to_packed_.size() != store_->states()) {
      // Truncated run overshoot: the stealing pool discovered states the
      // canonical schedule never admits. Rebuild the store with only
      // canonical states, in canonical order, so peak_state_bytes is a
      // function of the canonical set alone.
      RebuildStore();
    }
    store_->Freeze();
    if (report_.complete || canon_to_packed_.size() <= options_.max_states) {
      CheckPairs();
    }

    report_.states_explored = canon_to_packed_.size();
    report_.peak_state_bytes = store_->bytes();
    report_.restore_count = sim_restores_;
    report_.shard_max_load = store_->shard_max_load();
    report_.worker_expanded.resize(scratch_.size());
    for (std::size_t w = 0; w < scratch_.size(); ++w) {
      report_.worker_expanded[w] = logs_[w].recs.size();
    }
    // Gauges are always on (like every other module's counters); only the
    // trace recorder is gated by obs::Enabled().
    obs::Metrics().GetGauge("exhaustive.states").Set(report_.states_explored);
    obs::Metrics().GetGauge("exhaustive.transitions").Set(report_.transitions);
    obs::Metrics().GetGauge("exhaustive.pairs_checked").Set(report_.pairs_checked);
    obs::Metrics().GetGauge("exhaustive.restore_count").Set(report_.restore_count);
    obs::Metrics().GetGauge("exhaustive.peak_state_bytes").Set(report_.peak_state_bytes);
    obs::Metrics().GetGauge("exhaustive.steal_count").Set(report_.steal_count);
    obs::Metrics().GetGauge("exhaustive.shard_max_load").Set(report_.shard_max_load);
    // Per-worker counters expose exploration balance across the pool:
    // `expanded` is stealing-phase work done, `restores` the actual (not
    // serial-equivalent) reconstruction count including overshoot.
    for (std::size_t w = 0; w < scratch_.size(); ++w) {
      obs::Metrics()
          .GetGauge(Format("exhaustive.worker%zu.expanded", w))
          .Set(report_.worker_expanded[w]);
      obs::Metrics()
          .GetGauge(Format("exhaustive.worker%zu.restores", w))
          .Set(scratch_[w].restores);
    }
    return std::move(report_);
  }

 private:
  // Per-worker scratch: two live systems reconstructed on demand plus the
  // reusable buffers of every hot loop. Indexed by the pool's worker index;
  // never touched by two threads at once.
  struct Scratch {
    std::unique_ptr<SharedSystem> base;  // the "from" / first-of-pair state
    std::unique_ptr<SharedSystem> work;  // mutated per successor / per probe
    std::vector<Word> key_a;             // materialized serializations
    std::vector<Word> key_b;
    std::vector<Word> ser;    // successor serialization scratch
    std::vector<Word> phi_a;  // abstraction scratch
    std::vector<Word> phi_b;
    std::vector<std::vector<Word>> before_phi;  // per-colour Φ of the from state
    std::vector<std::uint32_t> refs_a;          // chunk-ref scratch (materialize)
    std::vector<std::uint32_t> refs_b;
    std::vector<std::uint32_t> intern_refs;  // chunk-ref scratch (intern)
    ChunkCache cache;
    std::uint64_t restores = 0;
  };

  Scratch& ScratchHere() {
    Scratch& sc = scratch_[static_cast<std::size_t>(ThreadPool::CurrentWorkerIndex())];
    if (sc.base == nullptr) {
      sc.base = initial_->Clone();
      sc.work = initial_->Clone();
      sc.before_phi.resize(static_cast<std::size_t>(colours_));
    }
    return sc;
  }

  static void Restore(SharedSystem& sys, std::span<const Word> key, Scratch& sc) {
    const bool ok = sys.RestoreFullState(key);
    SEP_CHECK(ok);
    ++sc.restores;
  }

  // Chunks `key` and interns the state; any thread. The merge thread calls
  // it through worker slot 0's scratch.
  std::int32_t InternKey(const std::vector<Word>& key) {
    Scratch& sc = ScratchHere();
    sc.intern_refs.clear();
    for (std::size_t base = 0; base < key.size(); base += kChunkWords) {
      sc.intern_refs.push_back(InternChunkCached(*store_, sc.cache, key.data() + base,
                                                 std::min(kChunkWords, key.size() - base)));
    }
    const std::uint64_t hash = HashWords(key.data(), key.size());
    return store_
        ->InternState(hash, sc.intern_refs.data(), sc.intern_refs.size(), key.size())
        .id;
  }

  // --- worker-side pure computation (stealing phase) ---

  // Appends Φ^colour of `sys` into `buf` (cleared first) and compares it
  // against `expected`.
  static bool SamePhi(const SharedSystem& sys, int colour, std::vector<Word>& buf,
                      const std::vector<Word>& expected) {
    buf.clear();
    sys.AppendAbstract(colour, buf);
    return buf == expected;
  }

  // One successor of the state held in sc.base / sc.key_a: reconstruct it
  // in sc.work, apply `mutate`, record FAILED checks only, serialize,
  // intern into the sharded store and log the packed id. If the intern was
  // fresh, hand the state to the scheduler (exactly one thread sees fresh).
  template <typename Mutate, typename PerColourCheck>
  void Successor(Scratch& sc, WorkerLog& log, const ExpandRec& rec, StealScheduler* sched,
                 int lane, Mutate mutate, PerColourCheck check) {
    const std::uint32_t ordinal = static_cast<std::uint32_t>(log.succs.size()) - rec.succ_begin;
    Restore(*sc.work, sc.key_a, sc);
    mutate(*sc.work);
    // The number of checks a successor contributes is NOT a pure function
    // of its ordinal: a from-state whose active colour is outside the
    // regime range (e.g. kernel mode) is checked against every colour, not
    // colours-1 of them. Record the actual count for the replay.
    log.succ_checks.push_back(check(*sc.work, sc, ordinal));
    sc.ser.clear();
    sc.work->AppendFullState(sc.ser);
    sc.intern_refs.clear();
    for (std::size_t base = 0; base < sc.ser.size(); base += kChunkWords) {
      sc.intern_refs.push_back(InternChunkCached(*store_, sc.cache, sc.ser.data() + base,
                                                 std::min(kChunkWords, sc.ser.size() - base)));
    }
    const std::uint64_t hash = HashWords(sc.ser.data(), sc.ser.size());
    const ShardedStateStore::InternedState interned =
        store_->InternState(hash, sc.intern_refs.data(), sc.intern_refs.size(), sc.ser.size());
    log.succs.push_back(interned.id);
    if (interned.fresh) {
      if (store_->states() >= options_.max_states) {
        // Budget heuristic only: the replay decides the true overflow point.
        stop_.store(true, std::memory_order_relaxed);
      }
      if (sched != nullptr && !stop_.load(std::memory_order_relaxed)) {
        sched->Emit(lane, interned.id);
      }
    }
  }

  // Every successor of one state, in the canonical order the serial checker
  // generates them: the operation, then each input value into each unit,
  // then each unit's activity. `sched == nullptr` is the merge thread's
  // backfill path (record only, no scheduling).
  void ExpandOne(std::int32_t from, StealScheduler* sched, int lane) {
    Scratch& sc = ScratchHere();
    WorkerLog& log = logs_[static_cast<std::size_t>(ThreadPool::CurrentWorkerIndex())];
    ExpandRec rec;
    rec.from = from;
    rec.succ_begin = static_cast<std::uint32_t>(log.succs.size());
    rec.fail_begin = static_cast<std::uint32_t>(log.fails.size());

    store_->MaterializeState(from, sc.refs_a, sc.key_a);
    Restore(*sc.base, sc.key_a, sc);
    for (int c = 0; c < colours_; ++c) {
      sc.before_phi[static_cast<std::size_t>(c)].clear();
      sc.base->AppendAbstract(c, sc.before_phi[static_cast<std::size_t>(c)]);
    }

    // (a) the operation NEXTOP(s).
    const int active = sc.base->Colour();
    Successor(
        sc, log, rec, sched, lane, [](SharedSystem& sys) { sys.ExecuteOperation(); },
        [&](const SharedSystem& after, Scratch& s, std::uint32_t ordinal) -> std::uint8_t {
          std::uint8_t checks = 0;
          for (int c = 0; c < colours_; ++c) {
            if (c == active) {
              continue;
            }
            ++checks;
            if (!SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)])) {
              log.fails.push_back(
                  {ordinal, 2, static_cast<std::int16_t>(c),
                   Format("operation of colour %d changed Φ of colour %d", active, c)});
            }
          }
          return checks;
        });

    // (b) every input in the alphabet, into every unit.
    for (int unit = 0; unit < units_; ++unit) {
      const int owner = initial_->UnitColour(unit);
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        Successor(
            sc, log, rec, sched, lane,
            [&](SharedSystem& sys) { sys.InjectInput(unit, static_cast<Word>(value)); },
            [&](const SharedSystem& after, Scratch& s, std::uint32_t ordinal) -> std::uint8_t {
              std::uint8_t checks = 0;
              for (int c = 0; c < colours_; ++c) {
                if (c == owner) {
                  continue;
                }
                ++checks;
                if (!SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)])) {
                  log.fails.push_back({ordinal, 4, static_cast<std::int16_t>(c),
                                       Format("input to unit %d visible to colour %d", unit, c)});
                }
              }
              return checks;
            });
      }
    }

    // (c) every unit's activity.
    for (int unit = 0; unit < units_; ++unit) {
      const int owner = initial_->UnitColour(unit);
      Successor(
          sc, log, rec, sched, lane,
          [&](SharedSystem& sys) {
            sys.StepUnit(unit);
            (void)sys.DrainOutput(unit);  // keep the state space bounded
          },
          [&](const SharedSystem& after, Scratch& s, std::uint32_t ordinal) -> std::uint8_t {
            std::uint8_t checks = 0;
            for (int c = 0; c < colours_; ++c) {
              if (c == owner) {
                continue;
              }
              ++checks;
              if (!SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)])) {
                log.fails.push_back(
                    {ordinal, 4, static_cast<std::int16_t>(c),
                     Format("activity of unit %d visible to colour %d", unit, c)});
              }
            }
            return checks;
          });
    }

    rec.succ_end = static_cast<std::uint32_t>(log.succs.size());
    rec.fail_end = static_cast<std::uint32_t>(log.fails.size());
    log.recs.push_back(rec);
    const std::size_t new_fails = rec.fail_end - rec.fail_begin;
    if (new_fails > 0 &&
        fail_count_.fetch_add(new_fails, std::memory_order_relaxed) + new_fails >=
            static_cast<std::size_t>(options_.max_violations)) {
      // Violation-budget heuristic; again, the replay decides the true cut.
      stop_.store(true, std::memory_order_relaxed);
    }
  }

  void Explore(std::int32_t initial_id) {
    StealScheduler sched(pool_.size(), options_.steal_seed);
    sched.Seed(initial_id);
    sched.Run(pool_, [&](std::int64_t item, int lane) {
      if (stop_.load(std::memory_order_relaxed)) {
        return;  // drained, not expanded; the replay backfills if needed
      }
      ExpandOne(static_cast<std::int32_t>(item), &sched, lane);
    });
    report_.steal_count += sched.steal_count();
  }

  // --- canonical replay (merge thread only) ---

  // Maps a packed id to its slot in a lazily grown per-shard table
  // (backfill interns states after the tables were first sized).
  static std::int64_t& SlotIn(std::array<std::vector<std::int64_t>, kShardCount>& table,
                              std::int32_t packed) {
    std::vector<std::int64_t>& shard = table[ShardOfId(packed)];
    const std::size_t local = LocalOfId(packed);
    if (local >= shard.size()) {
      shard.resize(local + 1, -1);
    }
    return shard[local];
  }

  void BuildLocator() {
    for (std::size_t w = 0; w < logs_.size(); ++w) {
      for (std::size_t r = 0; r < logs_[w].recs.size(); ++r) {
        SlotIn(locator_, logs_[w].recs[r].from) =
            static_cast<std::int64_t>((w << 40) | r);
      }
    }
  }

  // Guarantees an ExpandRec exists for `packed`: states drained by an early
  // stop are expanded here, on the merge thread, record-only.
  std::int64_t EnsureRecord(std::int32_t packed) {
    std::int64_t loc = SlotIn(locator_, packed);
    if (loc < 0) {
      ExpandOne(packed, nullptr, 0);
      const std::size_t w = static_cast<std::size_t>(ThreadPool::CurrentWorkerIndex());
      loc = static_cast<std::int64_t>((w << 40) | (logs_[w].recs.size() - 1));
      SlotIn(locator_, packed) = loc;
    }
    return loc;
  }

  bool Done() const {
    return static_cast<int>(report_.violations.size()) >= options_.max_violations;
  }

  void CountViolation(const FailRec& f) {
    ++report_.conditions[static_cast<std::size_t>(f.condition)].violations;
    if (static_cast<int>(report_.violations.size()) < options_.max_violations) {
      report_.violations.push_back({f.condition, f.colour, 0, f.description});
    }
  }

  // Replays the serial level-synchronous BFS over the recorded successor
  // lists, assigning canonical ids in the serial FIFO order and reproducing
  // its exact merge semantics: kLevelChunk dispatch granularity (restores
  // are counted per dispatched chunk), no early-stop inside one state's
  // successor list except budget overflow, overflow checked before intern,
  // per-level heartbeat with the canonical store size.
  void ReplayExplore(std::int32_t initial_id) {
    SlotIn(canon_of_, initial_id) = 0;
    canon_to_packed_.push_back(initial_id);
    frontier_.push_back(0);

    std::vector<std::int32_t> level;
    while (!frontier_.empty() && !Done() && !overflowed_) {
      level.swap(frontier_);
      frontier_.clear();

      // One heartbeat per BFS level: tick carries the canonical store size
      // (states may exceed a Word), a0/a1 the saturated level width/depth.
      if (obs::Enabled()) {
        obs::Emit(obs::Category::kChecker, obs::Code::kHeartbeat, obs::kColourKernel,
                  canon_to_packed_.size(), SaturateWord(level.size()), SaturateWord(depth_++));
      }

      for (std::size_t base = 0; base < level.size() && !Done() && !overflowed_;
           base += kLevelChunk) {
        const std::size_t count = std::min(kLevelChunk, level.size() - base);
        // The serial schedule expands the whole chunk before merging it.
        sim_restores_ += count * (1 + fanout_);
        for (std::size_t i = 0; i < count; ++i) {
          EnsureRecord(canon_to_packed_[static_cast<std::size_t>(level[base + i])]);
        }
        for (std::size_t i = 0; i < count && !Done() && !overflowed_; ++i) {
          const std::int64_t loc =
              SlotIn(locator_, canon_to_packed_[static_cast<std::size_t>(level[base + i])]);
          const WorkerLog& log = logs_[static_cast<std::size_t>(loc >> 40)];
          const ExpandRec rec = log.recs[static_cast<std::size_t>(loc & ((1LL << 40) - 1))];
          std::uint32_t fi = rec.fail_begin;
          const std::uint32_t nsuccs = rec.succ_end - rec.succ_begin;
          for (std::uint32_t ord = 0; ord < nsuccs; ++ord) {
            ++report_.transitions;
            // Splice in the checks: cond 2 for the operation successor,
            // cond 4 otherwise, with the per-successor count the worker
            // actually evaluated; recorded failures land at their ordinals.
            const int cond = ord == 0 ? 2 : 4;
            report_.conditions[static_cast<std::size_t>(cond)].checks +=
                log.succ_checks[rec.succ_begin + ord];
            while (fi < rec.fail_end && log.fails[fi].ordinal == ord) {
              CountViolation(log.fails[fi]);
              ++fi;
            }
            const std::int32_t sp = log.succs[rec.succ_begin + ord];
            std::int64_t& canon = SlotIn(canon_of_, sp);
            if (canon < 0) {
              if (canon_to_packed_.size() >= options_.max_states) {
                overflowed_ = true;
                break;
              }
              canon = static_cast<std::int64_t>(canon_to_packed_.size());
              canon_to_packed_.push_back(sp);
              frontier_.push_back(static_cast<std::int32_t>(canon));
            }
          }
        }
      }
    }
    report_.complete = frontier_.empty() && !overflowed_ && !Done();
  }

  // Re-interns only the canonical states, in canonical order, into a fresh
  // store. Every vector's growth then depends on the canonical sequence
  // alone, so bytes() matches what the serial schedule's store reports.
  void RebuildStore() {
    auto rebuilt = std::make_unique<ShardedStateStore>();
    std::vector<std::uint32_t> refs;
    std::vector<std::uint32_t> new_refs;
    std::vector<Word> key;
    for (std::int32_t& packed : canon_to_packed_) {
      store_->MaterializeState(packed, refs, key);
      new_refs.clear();
      for (std::size_t base = 0; base < key.size(); base += kChunkWords) {
        const std::size_t n = std::min(kChunkWords, key.size() - base);
        new_refs.push_back(rebuilt->InternChunk(HashWords(key.data() + base, n), key.data() + base, n));
      }
      const ShardedStateStore::InternedState interned = rebuilt->InternState(
          HashWords(key.data(), key.size()), new_refs.data(), new_refs.size(), key.size());
      SEP_CHECK(interned.fresh);
      packed = interned.id;
    }
    store_ = std::move(rebuilt);
    // Worker chunk caches hold refs into the dropped store; nothing interns
    // chunks after this point (the pair phase only materializes), so they
    // are never consulted again.
  }

  // --- pair phase: same stealing pool, canonical replay of outcomes ---

  // The checks of conditions 6, 1, 3 and 5 for one Φ-equal pair, in the
  // serial checker's order; records failures by check position. `a`/`b`
  // are canonical ids.
  void CheckPairRecord(int c, std::int32_t a, std::int32_t b, std::vector<FailRec>& out) {
    Scratch& sc = ScratchHere();
    std::uint32_t pos = 0;
    auto fail = [&](int cond, std::string description) {
      out.push_back({pos, static_cast<std::int16_t>(cond), static_cast<std::int16_t>(c),
                     std::move(description)});
    };
    store_->MaterializeState(canon_to_packed_[static_cast<std::size_t>(a)], sc.refs_a, sc.key_a);
    store_->MaterializeState(canon_to_packed_[static_cast<std::size_t>(b)], sc.refs_b, sc.key_b);

    // Conditions 6 and 1: same colour + same Φ^c.
    if (state_colours_[static_cast<std::size_t>(a)] == c &&
        state_colours_[static_cast<std::size_t>(b)] == c) {
      Restore(*sc.base, sc.key_a, sc);
      Restore(*sc.work, sc.key_b, sc);
      const OperationId na = sc.base->NextOperation();
      const OperationId nb = sc.work->NextOperation();
      if (na != nb) {
        fail(6, Format("NEXTOP differs for Φ-equal states of colour %d: %s vs %s", c,
                       na.ToString().c_str(), nb.ToString().c_str()));
      }
      ++pos;
      sc.base->ExecuteOperation();
      sc.work->ExecuteOperation();
      sc.phi_a.clear();
      sc.base->AppendAbstract(c, sc.phi_a);
      if (!SamePhi(*sc.work, c, sc.phi_b, sc.phi_a)) {
        fail(1, Format("operation effect on colour %d differs across Φ-equal states", c));
      }
      ++pos;
    }

    // Conditions 3 and 5 for each unit of colour c.
    for (int unit = 0; unit < units_; ++unit) {
      if (initial_->UnitColour(unit) != c) {
        continue;
      }
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        Restore(*sc.base, sc.key_a, sc);
        Restore(*sc.work, sc.key_b, sc);
        sc.base->InjectInput(unit, static_cast<Word>(value));
        sc.work->InjectInput(unit, static_cast<Word>(value));
        sc.phi_a.clear();
        sc.base->AppendAbstract(c, sc.phi_a);
        if (!SamePhi(*sc.work, c, sc.phi_b, sc.phi_a)) {
          fail(3, Format("input effect on colour %d differs across Φ-equal states", c));
        }
        ++pos;
      }
      Restore(*sc.base, sc.key_a, sc);
      Restore(*sc.work, sc.key_b, sc);
      sc.base->StepUnit(unit);
      sc.work->StepUnit(unit);
      sc.phi_a.clear();
      sc.base->AppendAbstract(c, sc.phi_a);
      if (!SamePhi(*sc.work, c, sc.phi_b, sc.phi_a)) {
        fail(3, Format("unit activity on colour %d differs across Φ-equal states", c));
      }
      ++pos;
      if (sc.base->DrainOutput(unit) != sc.work->DrainOutput(unit)) {
        fail(5, Format("output of colour %d differs across Φ-equal states", c));
      }
      ++pos;
    }
  }

  // Replays one pair task's check sequence, splicing recorded failures in
  // by position. Mirrors CheckPairRecord's structure exactly.
  void ReplayPairTask(int c, std::int32_t a, std::int32_t b, const std::vector<FailRec>& fails) {
    std::uint32_t pos = 0;
    std::size_t fi = 0;
    auto check = [&](int cond) {
      ++report_.conditions[static_cast<std::size_t>(cond)].checks;
      if (fi < fails.size() && fails[fi].ordinal == pos) {
        CountViolation(fails[fi]);
        ++fi;
      }
      ++pos;
    };
    if (state_colours_[static_cast<std::size_t>(a)] == c &&
        state_colours_[static_cast<std::size_t>(b)] == c) {
      check(6);
      check(1);
    }
    for (int unit = 0; unit < units_; ++unit) {
      if (initial_->UnitColour(unit) != c) {
        continue;
      }
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        check(3);
      }
      check(3);
      check(5);
    }
  }

  // RestoreFullState calls one pair task costs the serial schedule.
  std::uint64_t PairTaskCost(int c, std::int32_t a, std::int32_t b,
                             std::uint64_t units_of_colour) const {
    const std::uint64_t both =
        state_colours_[static_cast<std::size_t>(a)] == c &&
                state_colours_[static_cast<std::size_t>(b)] == c
            ? 2
            : 0;
    return both + units_of_colour * (2 * static_cast<std::uint64_t>(options_.inputs_per_unit) + 2);
  }

  // Conditions with a two-state antecedent, over every Φ-equal pair.
  // Workers compute outcomes on the stealing pool in waves; the merge
  // thread consumes them with the serial kPairChunk stop semantics, so the
  // report (including which pair hits the max_violations cut) is identical
  // to the serial schedule's.
  void CheckPairs() {
    const std::size_t n = canon_to_packed_.size();

    struct PairTask {
      std::int32_t a;
      std::int32_t b;
    };
    // Wave width is a dispatch knob only (larger = less barrier overhead,
    // more post-cut overshoot); the replay's chunk semantics — and with
    // them every report field — do not depend on it, so it MAY scale with
    // the pool. Always a multiple of kPairChunk.
    const std::size_t wave_cap =
        kPairChunk * std::clamp<std::size_t>(static_cast<std::size_t>(pool_.size()) * 4, 1, 32);
    std::vector<std::vector<Word>> phis(n);
    std::vector<int> order(n);
    state_colours_.assign(n, kColourNone);
    std::vector<PairTask> tasks;
    std::vector<std::vector<FailRec>> outcomes(wave_cap);
    bool colours_known = false;

    for (int c = 0; c < colours_ && !Done(); ++c) {
      // Group reachable states by Φ^c. Each worker reconstructs the state
      // in its scratch system, computes Φ^c once into the per-state slot
      // and (on the first colour) records COLOUR(s) so the pair probes can
      // test their condition-6/1 antecedent without a restore. Grain adapts
      // to pool and problem width (the old fixed batch starved wide pools).
      pool_.ParallelFor(n, ThreadPool::AdaptiveGrain(n, pool_.size()), [&](std::size_t i) {
        Scratch& sc = ScratchHere();
        store_->MaterializeState(canon_to_packed_[i], sc.refs_a, sc.key_a);
        Restore(*sc.base, sc.key_a, sc);
        if (!colours_known) {
          state_colours_[i] = static_cast<std::int8_t>(sc.base->Colour());
        }
        phis[i].clear();
        sc.base->AppendAbstract(c, phis[i]);
      });
      colours_known = true;
      sim_restores_ += n;

      std::uint64_t units_of_colour = 0;
      for (int unit = 0; unit < units_; ++unit) {
        if (initial_->UnitColour(unit) == c) {
          ++units_of_colour;
        }
      }

      // Enumerate pairs in the serial order: groups by ascending Φ key (the
      // order a std::map would iterate), members by ascending state id,
      // pairs lexicographically within a group, capped per group.
      for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<int>(i);
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (phis[static_cast<std::size_t>(a)] != phis[static_cast<std::size_t>(b)]) {
          return phis[static_cast<std::size_t>(a)] < phis[static_cast<std::size_t>(b)];
        }
        return a < b;
      });

      tasks.clear();
      for (std::size_t begin = 0; begin < n;) {
        std::size_t end = begin + 1;
        while (end < n && phis[static_cast<std::size_t>(order[end])] ==
                              phis[static_cast<std::size_t>(order[begin])]) {
          ++end;
        }
        std::size_t pairs = 0;
        for (std::size_t a = begin; a < end; ++a) {
          for (std::size_t b = a + 1; b < end; ++b) {
            if (++pairs > options_.max_pairs_per_group) {
              break;
            }
            tasks.push_back({order[a], order[b]});
          }
        }
        begin = end;
      }

      std::size_t dispatched = 0;
      std::size_t wave_begin = 0;
      for (std::size_t base = 0; base < tasks.size() && !Done(); base += kPairChunk) {
        const std::size_t count = std::min(kPairChunk, tasks.size() - base);
        if (base == dispatched) {
          // Replay fully consumed the previous wave; compute the next one
          // on the stealing pool.
          wave_begin = dispatched;
          const std::size_t wave_end = std::min(tasks.size(), wave_begin + wave_cap);
          for (std::size_t slot = 0; slot < wave_end - wave_begin; ++slot) {
            outcomes[slot].clear();
          }
          StealScheduler sched(pool_.size(), options_.steal_seed + ++wave_counter_);
          for (std::size_t t = wave_begin; t < wave_end; ++t) {
            sched.Seed(static_cast<std::int64_t>(t));
          }
          sched.Run(pool_, [&](std::int64_t t, int /*lane*/) {
            const PairTask& task = tasks[static_cast<std::size_t>(t)];
            CheckPairRecord(c, task.a, task.b, outcomes[static_cast<std::size_t>(t) - wave_begin]);
          });
          report_.steal_count += sched.steal_count();
          dispatched = wave_end;
        }
        for (std::size_t i = 0; i < count; ++i) {
          sim_restores_ += PairTaskCost(c, tasks[base + i].a, tasks[base + i].b, units_of_colour);
        }
        for (std::size_t i = 0; i < count; ++i) {
          if (Done()) {
            return;
          }
          ++report_.pairs_checked;
          ReplayPairTask(c, tasks[base + i].a, tasks[base + i].b,
                         outcomes[base + i - wave_begin]);
        }
      }
    }
  }

  const ExhaustiveOptions& options_;
  std::unique_ptr<SharedSystem> initial_;
  std::unique_ptr<ShardedStateStore> store_;
  int colours_ = 0;
  int units_ = 0;
  std::size_t fanout_ = 0;
  ThreadPool pool_;
  std::vector<Scratch> scratch_;
  std::vector<WorkerLog> logs_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> fail_count_{0};

  // Merge-thread-only canonical state.
  std::array<std::vector<std::int64_t>, kShardCount> canon_of_;   // packed -> canon id
  std::array<std::vector<std::int64_t>, kShardCount> locator_;    // packed -> (worker, rec)
  std::vector<std::int32_t> canon_to_packed_;                     // canon id -> packed
  std::vector<std::int32_t> frontier_;                            // canon ids
  std::vector<std::int8_t> state_colours_;  // COLOUR(s) per canon id (CheckPairs)
  std::size_t depth_ = 0;                   // BFS levels completed (heartbeat)
  std::uint64_t sim_restores_ = 0;          // serial-equivalent restore count
  std::uint64_t wave_counter_ = 0;
  bool overflowed_ = false;
  ExhaustiveReport report_;
};

}  // namespace

std::string ExhaustiveReport::Summary() const {
  std::string out = Format("%zu states, %zu transitions, %zu pairs, %s: ", states_explored,
                           transitions, pairs_checked, complete ? "COMPLETE" : "partial");
  for (int cond = 1; cond <= 6; ++cond) {
    const ConditionStats& s = conditions[static_cast<std::size_t>(cond)];
    out += Format("C%d %llu/%llu ", cond, static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.checks));
  }
  out += Passed() ? "=> SEPARABLE" : "=> VIOLATIONS";
  return out;
}

ExhaustiveReport CheckSeparabilityExhaustive(const SharedSystem& system,
                                             const ExhaustiveOptions& options) {
  return ExhaustiveRun(system, options).Run();
}

}  // namespace sep
