#include "src/core/exhaustive.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"

namespace sep {

namespace {

// The checker is parallel but its report is deterministic BY CONSTRUCTION,
// not by locking: workers compute pure per-state / per-pair results into
// preallocated slots, and a single merge thread replays those results in the
// canonical order the serial checker would have produced them. All shared
// structures (the intern table, the report, the frontier) are touched only by
// the merge thread, or read-only while a ParallelFor is in flight. A run with
// options.threads == 1 takes the same code path with an inline loop, so
// "serial" is not a separate implementation that could drift.

struct KeyHash {
  std::size_t operator()(const std::vector<Word>& key) const {
    Hasher h;
    h.MixRange(key);
    return static_cast<std::size_t>(h.digest());
  }
};

// One Check() call, precomputed on a worker. The description is built only
// on failure; passing checks never surface it.
struct CheckRecord {
  int condition = 0;
  int colour = kColourNone;
  bool ok = true;
  std::string description;
};

// One successor transition, precomputed on a worker.
struct SuccessorRecord {
  std::vector<CheckRecord> checks;
  std::vector<Word> key;  // FullState() of the successor
  // The successor itself; null if the worker already matched `key` against
  // the (frozen) intern table and the clone could be dropped early.
  std::unique_ptr<SharedSystem> state;
};

// States expanded per ParallelFor batch. Bounds both the memory held in
// not-yet-merged clones and the work wasted past the max_violations cutoff.
constexpr std::size_t kLevelChunk = 64;
// Φ-equal pairs checked per ParallelFor batch.
constexpr std::size_t kPairChunk = 512;

class ExhaustiveRun {
 public:
  ExhaustiveRun(const SharedSystem& initial, const ExhaustiveOptions& options)
      : options_(options), initial_(initial.Clone()), pool_(options.threads) {
    index_.reserve(std::min<std::size_t>(options_.max_states, std::size_t{1} << 20) + 1);
  }

  ExhaustiveReport Run() {
    if (!initial_->FullState().has_value()) {
      report_.violations.push_back(
          {0, kColourNone, 0, "system does not support FullState(); exhaustive mode needs it"});
      return std::move(report_);
    }

    Explore();
    if (report_.complete || states_.size() <= options_.max_states) {
      CheckPairs();
    }
    report_.states_explored = states_.size();
    return std::move(report_);
  }

 private:
  // --- merge-thread-only state mutation ---

  void Check(int condition, int colour, bool ok, const std::string& description) {
    auto& stats = report_.conditions[static_cast<std::size_t>(condition)];
    ++stats.checks;
    if (!ok) {
      ++stats.violations;
      if (static_cast<int>(report_.violations.size()) < options_.max_violations) {
        report_.violations.push_back({condition, colour, 0, description});
      }
    }
  }

  void Replay(const std::vector<CheckRecord>& checks) {
    for (const CheckRecord& r : checks) {
      Check(r.condition, r.colour, r.ok, r.description);
    }
  }

  // Registers a state if new; returns its index or -1 on budget overflow.
  // `state` may be null only when the key is already interned.
  int Intern(std::vector<Word> key, std::unique_ptr<SharedSystem> state) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      return it->second;
    }
    if (states_.size() >= options_.max_states) {
      overflowed_ = true;
      return -1;
    }
    SEP_CHECK(state != nullptr);
    const int id = static_cast<int>(states_.size());
    states_.push_back(std::move(state));
    frontier_.push_back(id);
    index_.emplace(std::move(key), id);
    return id;
  }

  bool Done() const {
    return static_cast<int>(report_.violations.size()) >= options_.max_violations;
  }

  // --- worker-side pure computation ---

  static void Record(std::vector<CheckRecord>& out, int condition, int colour, bool ok,
                     std::string description_if_failed) {
    out.push_back({condition, colour, ok, ok ? std::string() : std::move(description_if_failed)});
  }

  // One successor of `from`: apply `mutate` to a clone, record the
  // per-transition checks, serialize the result. Reads shared state
  // only through const methods; safe to run concurrently.
  template <typename Mutate, typename PerColourCheck>
  void Successor(const SharedSystem& from, std::vector<SuccessorRecord>& out, Mutate mutate,
                 PerColourCheck check) const {
    SuccessorRecord rec;
    std::unique_ptr<SharedSystem> next = from.Clone();
    mutate(*next);
    check(from, *next, rec.checks);
    std::optional<std::vector<Word>> key = next->FullState();
    rec.key = std::move(*key);
    // Drop clones of already-interned states early: the table is frozen
    // during expansion, so a hit here is still a hit at merge time.
    if (index_.find(rec.key) == index_.end()) {
      rec.state = std::move(next);
    }
    out.push_back(std::move(rec));
  }

  // Every successor of one state, in the canonical order the serial checker
  // generates them: the operation, then each input value into each unit,
  // then each unit's activity.
  void ExpandState(int from, std::vector<SuccessorRecord>& out) const {
    const SharedSystem& s = *states_[static_cast<std::size_t>(from)];
    const int colours = initial_->ColourCount();
    const int units = initial_->UnitCount();

    // (a) the operation NEXTOP(s).
    const int active = s.Colour();
    Successor(
        s, out, [](SharedSystem& sys) { sys.ExecuteOperation(); },
        [&](const SharedSystem& before, const SharedSystem& after,
            std::vector<CheckRecord>& checks) {
          for (int c = 0; c < colours; ++c) {
            if (c != active) {
              const bool ok = before.Abstract(c) == after.Abstract(c);
              Record(checks, 2, c, ok,
                     ok ? std::string()
                        : Format("operation of colour %d changed Φ of colour %d", active, c));
            }
          }
        });

    // (b) every input in the alphabet, into every unit.
    for (int unit = 0; unit < units; ++unit) {
      const int owner = s.UnitColour(unit);
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        Successor(
            s, out, [&](SharedSystem& sys) { sys.InjectInput(unit, static_cast<Word>(value)); },
            [&](const SharedSystem& before, const SharedSystem& after,
                std::vector<CheckRecord>& checks) {
              for (int c = 0; c < colours; ++c) {
                if (c != owner) {
                  const bool ok = before.Abstract(c) == after.Abstract(c);
                  Record(checks, 4, c, ok,
                         ok ? std::string()
                            : Format("input to unit %d visible to colour %d", unit, c));
                }
              }
            });
      }
    }

    // (c) every unit's activity.
    for (int unit = 0; unit < units; ++unit) {
      const int owner = s.UnitColour(unit);
      Successor(
          s, out,
          [&](SharedSystem& sys) {
            sys.StepUnit(unit);
            (void)sys.DrainOutput(unit);  // keep the state space bounded
          },
          [&](const SharedSystem& before, const SharedSystem& after,
              std::vector<CheckRecord>& checks) {
            for (int c = 0; c < colours; ++c) {
              if (c != owner) {
                const bool ok = before.Abstract(c) == after.Abstract(c);
                Record(checks, 4, c, ok,
                       ok ? std::string()
                          : Format("activity of unit %d visible to colour %d", unit, c));
              }
            }
          });
    }
  }

  void Explore() {
    {
      std::unique_ptr<SharedSystem> init = initial_->Clone();
      std::optional<std::vector<Word>> key = init->FullState();
      Intern(std::move(*key), std::move(init));
    }

    // Level-synchronous BFS. The serial checker pops a FIFO frontier, so
    // expanding level by level and merging each level in frontier order
    // assigns every state the same index the serial run would.
    std::vector<int> level;
    std::vector<std::vector<SuccessorRecord>> records;
    while (!frontier_.empty() && !Done()) {
      level.assign(frontier_.begin(), frontier_.end());
      frontier_.clear();

      for (std::size_t base = 0; base < level.size() && !Done(); base += kLevelChunk) {
        const std::size_t count = std::min(kLevelChunk, level.size() - base);
        records.clear();
        records.resize(count);
        pool_.ParallelFor(count,
                          [&](std::size_t i) { ExpandState(level[base + i], records[i]); });
        for (std::size_t i = 0; i < count && !Done(); ++i) {
          for (SuccessorRecord& rec : records[i]) {
            ++report_.transitions;
            Replay(rec.checks);
            Intern(std::move(rec.key), std::move(rec.state));
          }
        }
      }
    }
    report_.complete = frontier_.empty() && !overflowed_ && !Done();
  }

  // The checks of conditions 6, 1, 3 and 5 for one Φ-equal pair, in the
  // serial checker's order.
  void CheckPair(int c, int a, int b, std::vector<CheckRecord>& out) const {
    const int units = initial_->UnitCount();
    const SharedSystem& sa = *states_[static_cast<std::size_t>(a)];
    const SharedSystem& sb = *states_[static_cast<std::size_t>(b)];

    // Conditions 6 and 1: same colour + same Φ^c.
    if (sa.Colour() == c && sb.Colour() == c) {
      const OperationId na = sa.NextOperation();
      const OperationId nb = sb.NextOperation();
      const bool same_op = na == nb;
      Record(out, 6, c, same_op,
             same_op ? std::string()
                     : Format("NEXTOP differs for Φ-equal states of colour %d: %s vs %s", c,
                              na.ToString().c_str(), nb.ToString().c_str()));
      std::unique_ptr<SharedSystem> ta = sa.Clone();
      std::unique_ptr<SharedSystem> tb = sb.Clone();
      ta->ExecuteOperation();
      tb->ExecuteOperation();
      Record(out, 1, c, ta->Abstract(c) == tb->Abstract(c),
             Format("operation effect on colour %d differs across Φ-equal states", c));
    }

    // Conditions 3 and 5 for each unit of colour c.
    for (int unit = 0; unit < units; ++unit) {
      if (sa.UnitColour(unit) != c) {
        continue;
      }
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        std::unique_ptr<SharedSystem> ta = sa.Clone();
        std::unique_ptr<SharedSystem> tb = sb.Clone();
        ta->InjectInput(unit, static_cast<Word>(value));
        tb->InjectInput(unit, static_cast<Word>(value));
        Record(out, 3, c, ta->Abstract(c) == tb->Abstract(c),
               Format("input effect on colour %d differs across Φ-equal states", c));
      }
      std::unique_ptr<SharedSystem> ta = sa.Clone();
      std::unique_ptr<SharedSystem> tb = sb.Clone();
      ta->StepUnit(unit);
      tb->StepUnit(unit);
      Record(out, 3, c, ta->Abstract(c) == tb->Abstract(c),
             Format("unit activity on colour %d differs across Φ-equal states", c));
      Record(out, 5, c, ta->DrainOutput(unit) == tb->DrainOutput(unit),
             Format("output of colour %d differs across Φ-equal states", c));
    }
  }

  // Conditions with a two-state antecedent, over every Φ-equal pair.
  void CheckPairs() {
    const int colours = initial_->ColourCount();

    struct PairTask {
      int a;
      int b;
    };
    std::vector<std::vector<Word>> keys;
    std::vector<PairTask> tasks;
    std::vector<std::vector<CheckRecord>> outcomes;

    for (int c = 0; c < colours && !Done(); ++c) {
      // Group reachable states by Φ^c. Abstraction is the bulk of the
      // grouping cost, so compute the keys in parallel first.
      keys.assign(states_.size(), {});
      pool_.ParallelFor(states_.size(),
                        [&](std::size_t i) { keys[i] = states_[i]->Abstract(c).words; });
      std::unordered_map<std::vector<Word>, std::vector<int>, KeyHash> groups;
      groups.reserve(states_.size());
      for (std::size_t i = 0; i < states_.size(); ++i) {
        groups[keys[i]].push_back(static_cast<int>(i));
      }

      // Enumerate pairs in the serial order: groups by ascending Φ key (the
      // order a std::map would iterate), pairs lexicographically within a
      // group, capped per group.
      std::vector<const std::vector<Word>*> order;
      order.reserve(groups.size());
      for (const auto& [phi, members] : groups) {
        order.push_back(&phi);
      }
      std::sort(order.begin(), order.end(),
                [](const std::vector<Word>* a, const std::vector<Word>* b) { return *a < *b; });

      tasks.clear();
      for (const std::vector<Word>* phi : order) {
        const std::vector<int>& members = groups.find(*phi)->second;
        std::size_t pairs = 0;
        for (std::size_t a = 0; a < members.size(); ++a) {
          for (std::size_t b = a + 1; b < members.size(); ++b) {
            if (++pairs > options_.max_pairs_per_group) {
              break;
            }
            tasks.push_back({members[a], members[b]});
          }
        }
      }

      for (std::size_t base = 0; base < tasks.size() && !Done(); base += kPairChunk) {
        const std::size_t count = std::min(kPairChunk, tasks.size() - base);
        outcomes.clear();
        outcomes.resize(count);
        pool_.ParallelFor(count, [&](std::size_t i) {
          const PairTask& t = tasks[base + i];
          CheckPair(c, t.a, t.b, outcomes[i]);
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (Done()) {
            return;
          }
          ++report_.pairs_checked;
          Replay(outcomes[i]);
        }
      }
    }
  }

  const ExhaustiveOptions& options_;
  std::unique_ptr<SharedSystem> initial_;
  std::vector<std::unique_ptr<SharedSystem>> states_;
  std::unordered_map<std::vector<Word>, int, KeyHash> index_;
  std::deque<int> frontier_;
  bool overflowed_ = false;
  ExhaustiveReport report_;
  ThreadPool pool_;
};

}  // namespace

std::string ExhaustiveReport::Summary() const {
  std::string out = Format("%zu states, %zu transitions, %zu pairs, %s: ", states_explored,
                           transitions, pairs_checked, complete ? "COMPLETE" : "partial");
  for (int cond = 1; cond <= 6; ++cond) {
    const ConditionStats& s = conditions[static_cast<std::size_t>(cond)];
    out += Format("C%d %llu/%llu ", cond, static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.checks));
  }
  out += Passed() ? "=> SEPARABLE" : "=> VIOLATIONS";
  return out;
}

ExhaustiveReport CheckSeparabilityExhaustive(const SharedSystem& system,
                                             const ExhaustiveOptions& options) {
  return ExhaustiveRun(system, options).Run();
}

}  // namespace sep
