#include "src/core/exhaustive.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "src/base/arena.h"
#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

namespace {

// The checker is parallel but its report is deterministic BY CONSTRUCTION,
// not by locking: workers compute pure per-state / per-pair results into
// preallocated slots, and a single merge thread replays those results in the
// canonical order the serial checker would have produced them. All shared
// structures (the state store, the report, the frontier) are touched only by
// the merge thread, or read-only while a ParallelFor is in flight. A run with
// options.threads == 1 takes the same code path with an inline loop, so
// "serial" is not a separate implementation that could drift.
//
// No live SharedSystem is retained per explored state. Each state exists
// only as its serialized FullState() words in the StateStore below; workers
// reconstruct live machines on demand (RestoreFullState) into per-worker
// scratch instances. Peak memory is therefore O(serialized words) — and
// because the store deduplicates content chunks across states, typically far
// less than one full serialization per state.

// Compact interned storage for serialized states.
//
// Layout: serializations are cut into kChunkWords-word chunks at fixed
// offsets and each distinct chunk is stored once in a flat arena
// (`chunk_words_`). A state is its sequence of chunk ids plus its exact word
// count (serializations vary in length when device queues grow). Reachable
// states of one system differ in a handful of memory pages, so chunk
// interning stores the common content once; per state the store holds
// ~(words / kChunkWords) chunk ids instead of the words themselves.
//
// Both hash tables keep precomputed 64-bit hashes in flat arrays
// (`chunk_hashes_`, `state_hashes_`), so a probe compares hashes first and
// never re-hashes stored content.
class StateStore {
 public:
  static constexpr std::size_t kChunkWords = 64;

  std::size_t size() const { return state_lens_.size(); }
  std::uint64_t state_hash(std::int32_t id) const {
    return state_hashes_[static_cast<std::size_t>(id)];
  }

  // Read-only probe; safe concurrently with other probes (workers run it
  // against the frozen store while a level expands).
  std::int32_t Find(std::uint64_t hash, const Word* key, std::size_t count) const {
    return state_index_.Find(
        hash, [&](std::int32_t id) { return StateEquals(id, hash, key, count); });
  }

  // Merge-thread only. Returns the id of an equal existing state or interns
  // a new one.
  std::int32_t Intern(std::uint64_t hash, const Word* key, std::size_t count) {
    const std::int32_t found = Find(hash, key, count);
    if (found >= 0) {
      return found;
    }
    const std::int32_t id = static_cast<std::int32_t>(size());
    for (std::size_t base = 0; base < count; base += kChunkWords) {
      state_chunks_.push_back(InternChunk(key + base, std::min(kChunkWords, count - base)));
    }
    state_offsets_.push_back(static_cast<std::uint32_t>(state_chunks_.size()));
    state_lens_.push_back(static_cast<std::uint32_t>(count));
    state_hashes_.push_back(hash);
    state_index_.Insert(hash, id, [&](std::int32_t existing) {
      return state_hashes_[static_cast<std::size_t>(existing)];
    });
    return id;
  }

  // Reconstructs state `id`'s serialized words into `out`.
  void Materialize(std::int32_t id, std::vector<Word>& out) const {
    const std::size_t i = static_cast<std::size_t>(id);
    out.clear();
    out.reserve(state_lens_[i]);
    for (std::uint32_t c = (i == 0 ? 0 : state_offsets_[i - 1]); c < state_offsets_[i]; ++c) {
      const std::uint32_t chunk = state_chunks_[c];
      out.insert(out.end(), chunk_words_.begin() + chunk_offsets_[chunk],
                 chunk_words_.begin() + chunk_offsets_[chunk + 1]);
    }
  }

  // Resident footprint: arenas, per-state tables and hash indexes.
  std::size_t bytes() const {
    return chunk_words_.capacity() * sizeof(Word) +
           chunk_offsets_.capacity() * sizeof(std::uint32_t) +
           chunk_hashes_.capacity() * sizeof(std::uint64_t) +
           state_chunks_.capacity() * sizeof(std::uint32_t) +
           state_offsets_.capacity() * sizeof(std::uint32_t) +
           state_lens_.capacity() * sizeof(std::uint32_t) +
           state_hashes_.capacity() * sizeof(std::uint64_t) + state_index_.bytes() +
           chunk_index_.bytes();
  }

 private:
  bool StateEquals(std::int32_t id, std::uint64_t hash, const Word* key,
                   std::size_t count) const {
    const std::size_t i = static_cast<std::size_t>(id);
    if (state_hashes_[i] != hash || state_lens_[i] != count) {
      return false;
    }
    std::size_t pos = 0;
    for (std::uint32_t c = (i == 0 ? 0 : state_offsets_[i - 1]); c < state_offsets_[i]; ++c) {
      const std::uint32_t chunk = state_chunks_[c];
      const std::size_t len = chunk_offsets_[chunk + 1] - chunk_offsets_[chunk];
      if (std::memcmp(chunk_words_.data() + chunk_offsets_[chunk], key + pos,
                      len * sizeof(Word)) != 0) {
        return false;
      }
      pos += len;
    }
    return true;
  }

  std::uint32_t InternChunk(const Word* words, std::size_t count) {
    const std::uint64_t hash = HashWords(words, count);
    const std::int32_t found = chunk_index_.Find(hash, [&](std::int32_t id) {
      const std::size_t i = static_cast<std::size_t>(id);
      return chunk_hashes_[i] == hash &&
             chunk_offsets_[i + 1] - chunk_offsets_[i] == count &&
             std::memcmp(chunk_words_.data() + chunk_offsets_[i], words,
                         count * sizeof(Word)) == 0;
    });
    if (found >= 0) {
      return static_cast<std::uint32_t>(found);
    }
    const std::int32_t id = static_cast<std::int32_t>(chunk_hashes_.size());
    chunk_words_.insert(chunk_words_.end(), words, words + count);
    chunk_offsets_.push_back(static_cast<std::uint32_t>(chunk_words_.size()));
    chunk_hashes_.push_back(hash);
    chunk_index_.Insert(hash, id, [&](std::int32_t existing) {
      return chunk_hashes_[static_cast<std::size_t>(existing)];
    });
    return static_cast<std::uint32_t>(id);
  }

  // Chunk arena: chunk i occupies chunk_words_[chunk_offsets_[i] ..
  // chunk_offsets_[i + 1]).
  std::vector<Word> chunk_words_;
  std::vector<std::uint32_t> chunk_offsets_{0};
  std::vector<std::uint64_t> chunk_hashes_;
  HashIndex chunk_index_;

  // Per-state tables: state i's chunk ids occupy state_chunks_[
  // state_offsets_[i - 1] .. state_offsets_[i]) (0 for i == 0).
  std::vector<std::uint32_t> state_chunks_;
  std::vector<std::uint32_t> state_offsets_;
  std::vector<std::uint32_t> state_lens_;
  std::vector<std::uint64_t> state_hashes_;
  HashIndex state_index_;
};

// One Check() call, precomputed on a worker. The description is built only
// on failure; passing checks never surface it.
struct CheckRecord {
  int condition = 0;
  int colour = kColourNone;
  bool ok = true;
  std::string description;
};

// One successor transition, precomputed on a worker. The serialized
// successor lives in the owning ExpandResult's flat `words` buffer unless
// the worker already matched it against the frozen state store.
struct SuccessorRec {
  std::uint32_t check_begin = 0;
  std::uint32_t check_end = 0;
  std::int32_t frozen_id = -1;  // >= 0: already interned before this level
  std::uint64_t hash = 0;
  std::uint32_t key_begin = 0;
  std::uint32_t key_end = 0;
};

// All successors of one expanded state. Flat buffers; cleared (capacity
// retained) per chunk rather than reallocated.
struct ExpandResult {
  std::vector<CheckRecord> checks;
  std::vector<SuccessorRec> succs;
  std::vector<Word> words;

  void Clear() {
    checks.clear();
    succs.clear();
    words.clear();
  }
};

// States expanded per ParallelFor batch. Bounds both the memory held in
// not-yet-merged serializations and the work wasted past the max_violations
// cutoff.
constexpr std::size_t kLevelChunk = 64;
// Φ-equal pairs checked per ParallelFor batch.
constexpr std::size_t kPairChunk = 512;

// Trace payload words are 16-bit; saturate rather than wrap so a reader can
// tell "at least 65535" from a small value.
Word SaturateWord(std::size_t value) {
  return static_cast<Word>(std::min<std::size_t>(value, 0xFFFF));
}

class ExhaustiveRun {
 public:
  ExhaustiveRun(const SharedSystem& initial, const ExhaustiveOptions& options)
      : options_(options), initial_(initial.Clone()), pool_(options.threads) {
    scratch_.resize(static_cast<std::size_t>(pool_.size()));
  }

  ExhaustiveReport Run() {
    std::optional<std::vector<Word>> init_key = initial_->FullState();
    if (!init_key.has_value()) {
      report_.violations.push_back(
          {0, kColourNone, 0, "system does not support FullState(); exhaustive mode needs it"});
      return std::move(report_);
    }
    // Probe restore support once, by restoring the initial state onto a
    // throwaway clone (self-restore would mask asymmetric encodings).
    if (!initial_->Clone()->RestoreFullState(*init_key)) {
      report_.violations.push_back({0, kColourNone, 0,
                                    "system does not support RestoreFullState(); the compact "
                                    "exhaustive checker needs it"});
      return std::move(report_);
    }

    Explore(*init_key);
    if (report_.complete || store_.size() <= options_.max_states) {
      CheckPairs();
    }
    report_.states_explored = store_.size();
    report_.peak_state_bytes = store_.bytes();
    for (const Scratch& sc : scratch_) {
      report_.restore_count += sc.restores;
    }
    if (obs::Enabled()) {
      obs::Metrics().GetGauge("exhaustive.states").Set(report_.states_explored);
      obs::Metrics().GetGauge("exhaustive.transitions").Set(report_.transitions);
      obs::Metrics().GetGauge("exhaustive.pairs_checked").Set(report_.pairs_checked);
      obs::Metrics().GetGauge("exhaustive.restore_count").Set(report_.restore_count);
      obs::Metrics().GetGauge("exhaustive.peak_state_bytes").Set(report_.peak_state_bytes);
      // Per-worker restore counts expose load imbalance across the pool.
      for (std::size_t w = 0; w < scratch_.size(); ++w) {
        obs::Metrics()
            .GetGauge(Format("exhaustive.worker%zu.restores", w))
            .Set(scratch_[w].restores);
      }
    }
    return std::move(report_);
  }

 private:
  // Per-worker scratch: two live systems reconstructed on demand plus the
  // reusable buffers of every hot loop. Indexed by the pool's worker index;
  // never touched by two threads at once.
  struct Scratch {
    std::unique_ptr<SharedSystem> base;  // the "from" / first-of-pair state
    std::unique_ptr<SharedSystem> work;  // mutated per successor / per probe
    std::vector<Word> key_a;             // materialized serializations
    std::vector<Word> key_b;
    std::vector<Word> ser;   // successor serialization scratch
    std::vector<Word> phi_a;  // abstraction scratch
    std::vector<Word> phi_b;
    std::vector<std::vector<Word>> before_phi;  // per-colour Φ of the from state
    std::uint64_t restores = 0;
  };

  Scratch& ScratchHere() {
    Scratch& sc = scratch_[static_cast<std::size_t>(ThreadPool::CurrentWorkerIndex())];
    if (sc.base == nullptr) {
      sc.base = initial_->Clone();
      sc.work = initial_->Clone();
      sc.before_phi.resize(static_cast<std::size_t>(initial_->ColourCount()));
    }
    return sc;
  }

  static void Restore(SharedSystem& sys, std::span<const Word> key, Scratch& sc) {
    const bool ok = sys.RestoreFullState(key);
    SEP_CHECK(ok);
    ++sc.restores;
  }

  // --- merge-thread-only state mutation ---

  void Check(int condition, int colour, bool ok, const std::string& description) {
    auto& stats = report_.conditions[static_cast<std::size_t>(condition)];
    ++stats.checks;
    if (!ok) {
      ++stats.violations;
      if (static_cast<int>(report_.violations.size()) < options_.max_violations) {
        report_.violations.push_back({condition, colour, 0, description});
      }
    }
  }

  void Replay(const std::vector<CheckRecord>& checks, std::uint32_t begin, std::uint32_t end) {
    for (std::uint32_t i = begin; i < end; ++i) {
      const CheckRecord& r = checks[i];
      Check(r.condition, r.colour, r.ok, r.description);
    }
  }

  bool Done() const {
    return static_cast<int>(report_.violations.size()) >= options_.max_violations;
  }

  // --- worker-side pure computation ---

  // Records one check outcome; the description is rendered only on failure.
  template <typename MakeDescription>
  static void Record(std::vector<CheckRecord>& out, int condition, int colour, bool ok,
                     MakeDescription&& description) {
    out.push_back({condition, colour, ok, ok ? std::string() : description()});
  }

  // Appends Φ^colour of `sys` into `buf` (cleared first) and compares it
  // against `expected`.
  static bool SamePhi(const SharedSystem& sys, int colour, std::vector<Word>& buf,
                      const std::vector<Word>& expected) {
    buf.clear();
    sys.AppendAbstract(colour, buf);
    return buf == expected;
  }

  // One successor of the state held in sc.base / sc.key_a: reconstruct it in
  // sc.work, apply `mutate`, record the per-transition checks, serialize the
  // result and match it against the frozen store. Reads shared state only
  // through const methods; safe to run concurrently.
  template <typename Mutate, typename PerColourCheck>
  void Successor(Scratch& sc, ExpandResult& out, Mutate mutate, PerColourCheck check) {
    Restore(*sc.work, sc.key_a, sc);
    mutate(*sc.work);
    SuccessorRec rec;
    rec.check_begin = static_cast<std::uint32_t>(out.checks.size());
    check(*sc.work, sc, out.checks);
    rec.check_end = static_cast<std::uint32_t>(out.checks.size());
    sc.ser.clear();
    sc.work->AppendFullState(sc.ser);
    rec.hash = HashWords(sc.ser.data(), sc.ser.size());
    // Drop serializations of already-interned states early: the store is
    // frozen during expansion, so a hit here is still a hit at merge time.
    rec.frozen_id = store_.Find(rec.hash, sc.ser.data(), sc.ser.size());
    if (rec.frozen_id < 0) {
      rec.key_begin = static_cast<std::uint32_t>(out.words.size());
      out.words.insert(out.words.end(), sc.ser.begin(), sc.ser.end());
      rec.key_end = static_cast<std::uint32_t>(out.words.size());
    }
    out.succs.push_back(rec);
  }

  // Every successor of one state, in the canonical order the serial checker
  // generates them: the operation, then each input value into each unit,
  // then each unit's activity.
  void ExpandState(std::int32_t from, ExpandResult& out) {
    Scratch& sc = ScratchHere();
    store_.Materialize(from, sc.key_a);
    Restore(*sc.base, sc.key_a, sc);

    const int colours = initial_->ColourCount();
    const int units = initial_->UnitCount();
    for (int c = 0; c < colours; ++c) {
      sc.before_phi[static_cast<std::size_t>(c)].clear();
      sc.base->AppendAbstract(c, sc.before_phi[static_cast<std::size_t>(c)]);
    }

    // (a) the operation NEXTOP(s).
    const int active = sc.base->Colour();
    Successor(
        sc, out, [](SharedSystem& sys) { sys.ExecuteOperation(); },
        [&](const SharedSystem& after, Scratch& s, std::vector<CheckRecord>& checks) {
          for (int c = 0; c < colours; ++c) {
            if (c != active) {
              const bool ok =
                  SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)]);
              Record(checks, 2, c, ok, [&] {
                return Format("operation of colour %d changed Φ of colour %d", active, c);
              });
            }
          }
        });

    // (b) every input in the alphabet, into every unit.
    for (int unit = 0; unit < units; ++unit) {
      const int owner = initial_->UnitColour(unit);
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        Successor(
            sc, out, [&](SharedSystem& sys) { sys.InjectInput(unit, static_cast<Word>(value)); },
            [&](const SharedSystem& after, Scratch& s, std::vector<CheckRecord>& checks) {
              for (int c = 0; c < colours; ++c) {
                if (c != owner) {
                  const bool ok =
                      SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)]);
                  Record(checks, 4, c, ok, [&] {
                    return Format("input to unit %d visible to colour %d", unit, c);
                  });
                }
              }
            });
      }
    }

    // (c) every unit's activity.
    for (int unit = 0; unit < units; ++unit) {
      const int owner = initial_->UnitColour(unit);
      Successor(
          sc, out,
          [&](SharedSystem& sys) {
            sys.StepUnit(unit);
            (void)sys.DrainOutput(unit);  // keep the state space bounded
          },
          [&](const SharedSystem& after, Scratch& s, std::vector<CheckRecord>& checks) {
            for (int c = 0; c < colours; ++c) {
              if (c != owner) {
                const bool ok =
                    SamePhi(after, c, s.phi_b, s.before_phi[static_cast<std::size_t>(c)]);
                Record(checks, 4, c, ok, [&] {
                  return Format("activity of unit %d visible to colour %d", unit, c);
                });
              }
            }
          });
    }
  }

  void Explore(const std::vector<Word>& init_key) {
    {
      const std::uint64_t hash = HashWords(init_key.data(), init_key.size());
      const std::int32_t id = store_.Intern(hash, init_key.data(), init_key.size());
      frontier_.push_back(id);
    }

    // Level-synchronous BFS. The serial checker pops a FIFO frontier, so
    // expanding level by level and merging each level in frontier order
    // assigns every state the same index the serial run would. Once the
    // state budget overflows, expansion stops immediately — the rest of the
    // level would only grow a report already marked incomplete.
    std::vector<std::int32_t> level;
    std::vector<ExpandResult> records(kLevelChunk);
    while (!frontier_.empty() && !Done() && !overflowed_) {
      level.swap(frontier_);
      frontier_.clear();

      // One heartbeat per BFS level: tick carries the store size (states may
      // exceed a Word), a0/a1 carry the saturated level/frontier widths.
      if (obs::Enabled()) {
        obs::Emit(obs::Category::kChecker, obs::Code::kHeartbeat, obs::kColourKernel,
                  store_.size(), SaturateWord(level.size()), SaturateWord(depth_++));
      }

      for (std::size_t base = 0; base < level.size() && !Done() && !overflowed_;
           base += kLevelChunk) {
        const std::size_t count = std::min(kLevelChunk, level.size() - base);
        for (std::size_t i = 0; i < count; ++i) {
          records[i].Clear();
        }
        pool_.ParallelFor(count, [&](std::size_t i) { ExpandState(level[base + i], records[i]); });
        for (std::size_t i = 0; i < count && !Done() && !overflowed_; ++i) {
          for (const SuccessorRec& rec : records[i].succs) {
            ++report_.transitions;
            Replay(records[i].checks, rec.check_begin, rec.check_end);
            if (rec.frozen_id >= 0) {
              continue;  // known state; nothing to intern
            }
            const Word* key = records[i].words.data() + rec.key_begin;
            const std::size_t len = rec.key_end - rec.key_begin;
            const std::int32_t existing = store_.Find(rec.hash, key, len);
            if (existing >= 0) {
              continue;  // duplicate within this level
            }
            if (store_.size() >= options_.max_states) {
              overflowed_ = true;
              break;
            }
            frontier_.push_back(store_.Intern(rec.hash, key, len));
          }
        }
      }
    }
    report_.complete = frontier_.empty() && !overflowed_ && !Done();
  }

  // The checks of conditions 6, 1, 3 and 5 for one Φ-equal pair, in the
  // serial checker's order. `a` and `b` are reconstructed per probe; the
  // previous implementation heap-cloned two live machines per probe instead.
  void CheckPair(int c, std::int32_t a, std::int32_t b, std::vector<CheckRecord>& out) {
    Scratch& sc = ScratchHere();
    const int units = initial_->UnitCount();
    store_.Materialize(a, sc.key_a);
    store_.Materialize(b, sc.key_b);

    // Conditions 6 and 1: same colour + same Φ^c.
    if (state_colours_[static_cast<std::size_t>(a)] == c &&
        state_colours_[static_cast<std::size_t>(b)] == c) {
      Restore(*sc.base, sc.key_a, sc);
      Restore(*sc.work, sc.key_b, sc);
      const OperationId na = sc.base->NextOperation();
      const OperationId nb = sc.work->NextOperation();
      const bool same_op = na == nb;
      Record(out, 6, c, same_op, [&] {
        return Format("NEXTOP differs for Φ-equal states of colour %d: %s vs %s", c,
                      na.ToString().c_str(), nb.ToString().c_str());
      });
      sc.base->ExecuteOperation();
      sc.work->ExecuteOperation();
      sc.phi_a.clear();
      sc.base->AppendAbstract(c, sc.phi_a);
      Record(out, 1, c, SamePhi(*sc.work, c, sc.phi_b, sc.phi_a), [&] {
        return Format("operation effect on colour %d differs across Φ-equal states", c);
      });
    }

    // Conditions 3 and 5 for each unit of colour c.
    for (int unit = 0; unit < units; ++unit) {
      if (initial_->UnitColour(unit) != c) {
        continue;
      }
      for (int value = 1; value <= options_.inputs_per_unit; ++value) {
        Restore(*sc.base, sc.key_a, sc);
        Restore(*sc.work, sc.key_b, sc);
        sc.base->InjectInput(unit, static_cast<Word>(value));
        sc.work->InjectInput(unit, static_cast<Word>(value));
        sc.phi_a.clear();
        sc.base->AppendAbstract(c, sc.phi_a);
        Record(out, 3, c, SamePhi(*sc.work, c, sc.phi_b, sc.phi_a), [&] {
          return Format("input effect on colour %d differs across Φ-equal states", c);
        });
      }
      Restore(*sc.base, sc.key_a, sc);
      Restore(*sc.work, sc.key_b, sc);
      sc.base->StepUnit(unit);
      sc.work->StepUnit(unit);
      sc.phi_a.clear();
      sc.base->AppendAbstract(c, sc.phi_a);
      Record(out, 3, c, SamePhi(*sc.work, c, sc.phi_b, sc.phi_a), [&] {
        return Format("unit activity on colour %d differs across Φ-equal states", c);
      });
      Record(out, 5, c, sc.base->DrainOutput(unit) == sc.work->DrainOutput(unit), [&] {
        return Format("output of colour %d differs across Φ-equal states", c);
      });
    }
  }

  // Conditions with a two-state antecedent, over every Φ-equal pair.
  void CheckPairs() {
    const int colours = initial_->ColourCount();
    const std::size_t n = store_.size();

    struct PairTask {
      std::int32_t a;
      std::int32_t b;
    };
    // Hoisted across colours and chunks; cleared with capacity retained.
    std::vector<std::vector<Word>> phis(n);
    std::vector<int> order(n);
    state_colours_.assign(n, kColourNone);
    std::vector<PairTask> tasks;
    std::vector<std::vector<CheckRecord>> outcomes(kPairChunk);
    bool colours_known = false;

    for (int c = 0; c < colours && !Done(); ++c) {
      // Group reachable states by Φ^c. Each worker reconstructs the state
      // in its scratch system, computes Φ^c once into the per-state slot
      // and (on the first colour) records COLOUR(s) so CheckPair can test
      // its condition-6/1 antecedent without a restore.
      pool_.ParallelFor(n, [&](std::size_t i) {
        Scratch& sc = ScratchHere();
        store_.Materialize(static_cast<std::int32_t>(i), sc.key_a);
        Restore(*sc.base, sc.key_a, sc);
        if (!colours_known) {
          state_colours_[i] = static_cast<std::int8_t>(sc.base->Colour());
        }
        phis[i].clear();
        sc.base->AppendAbstract(c, phis[i]);
      });
      colours_known = true;

      // Enumerate pairs in the serial order: groups by ascending Φ key (the
      // order a std::map would iterate), members by ascending state id,
      // pairs lexicographically within a group, capped per group.
      for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<int>(i);
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (phis[static_cast<std::size_t>(a)] != phis[static_cast<std::size_t>(b)]) {
          return phis[static_cast<std::size_t>(a)] < phis[static_cast<std::size_t>(b)];
        }
        return a < b;
      });

      tasks.clear();
      for (std::size_t begin = 0; begin < n;) {
        std::size_t end = begin + 1;
        while (end < n && phis[static_cast<std::size_t>(order[end])] ==
                              phis[static_cast<std::size_t>(order[begin])]) {
          ++end;
        }
        std::size_t pairs = 0;
        for (std::size_t a = begin; a < end; ++a) {
          for (std::size_t b = a + 1; b < end; ++b) {
            if (++pairs > options_.max_pairs_per_group) {
              break;
            }
            tasks.push_back({order[a], order[b]});
          }
        }
        begin = end;
      }

      for (std::size_t base = 0; base < tasks.size() && !Done(); base += kPairChunk) {
        const std::size_t count = std::min(kPairChunk, tasks.size() - base);
        for (std::size_t i = 0; i < count; ++i) {
          outcomes[i].clear();
        }
        pool_.ParallelFor(count, [&](std::size_t i) {
          const PairTask& t = tasks[base + i];
          CheckPair(c, t.a, t.b, outcomes[i]);
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (Done()) {
            return;
          }
          ++report_.pairs_checked;
          Replay(outcomes[i], 0, static_cast<std::uint32_t>(outcomes[i].size()));
        }
      }
    }
  }

  const ExhaustiveOptions& options_;
  std::unique_ptr<SharedSystem> initial_;
  StateStore store_;
  std::vector<std::int32_t> frontier_;
  std::vector<std::int8_t> state_colours_;  // COLOUR(s) per state (CheckPairs)
  std::size_t depth_ = 0;                   // BFS levels completed (heartbeat)
  bool overflowed_ = false;
  ExhaustiveReport report_;
  ThreadPool pool_;
  std::vector<Scratch> scratch_;
};

}  // namespace

std::string ExhaustiveReport::Summary() const {
  std::string out = Format("%zu states, %zu transitions, %zu pairs, %s: ", states_explored,
                           transitions, pairs_checked, complete ? "COMPLETE" : "partial");
  for (int cond = 1; cond <= 6; ++cond) {
    const ConditionStats& s = conditions[static_cast<std::size_t>(cond)];
    out += Format("C%d %llu/%llu ", cond, static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.checks));
  }
  out += Passed() ? "=> SEPARABLE" : "=> VIOLATIONS";
  return out;
}

ExhaustiveReport CheckSeparabilityExhaustive(const SharedSystem& system,
                                             const ExhaustiveOptions& options) {
  return ExhaustiveRun(system, options).Run();
}

}  // namespace sep
