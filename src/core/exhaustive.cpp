#include "src/core/exhaustive.h"

#include <deque>
#include <map>
#include <memory>

#include "src/base/strings.h"

namespace sep {

namespace {

class ExhaustiveRun {
 public:
  ExhaustiveRun(const SharedSystem& initial, const ExhaustiveOptions& options)
      : options_(options), initial_(initial.Clone()) {}

  ExhaustiveReport Run() {
    if (!initial_->FullState().has_value()) {
      report_.violations.push_back(
          {0, kColourNone, 0, "system does not support FullState(); exhaustive mode needs it"});
      return std::move(report_);
    }

    Explore();
    if (report_.complete || states_.size() <= options_.max_states) {
      CheckPairs();
    }
    report_.states_explored = states_.size();
    return std::move(report_);
  }

 private:
  void Check(int condition, int colour, bool ok, const std::string& description) {
    auto& stats = report_.conditions[static_cast<std::size_t>(condition)];
    ++stats.checks;
    if (!ok) {
      ++stats.violations;
      if (static_cast<int>(report_.violations.size()) < options_.max_violations) {
        report_.violations.push_back({condition, colour, 0, description});
      }
    }
  }

  // Registers a state if new; returns its index or -1 on budget overflow.
  int Intern(std::unique_ptr<SharedSystem> state) {
    std::optional<std::vector<Word>> key = state->FullState();
    auto [it, inserted] = index_.try_emplace(std::move(*key), static_cast<int>(states_.size()));
    if (!inserted) {
      return it->second;
    }
    if (states_.size() >= options_.max_states) {
      overflowed_ = true;
      index_.erase(it);
      return -1;
    }
    states_.push_back(std::move(state));
    frontier_.push_back(it->second);
    return it->second;
  }

  // One successor: apply `mutate` to a clone of states_[from]; check the
  // per-transition conditions; intern the result.
  template <typename Mutate, typename PerColourCheck>
  void Successor(int from, Mutate mutate, PerColourCheck check) {
    std::unique_ptr<SharedSystem> next = states_[static_cast<std::size_t>(from)]->Clone();
    mutate(*next);
    check(*states_[static_cast<std::size_t>(from)], *next);
    ++report_.transitions;
    Intern(std::move(next));
  }

  void Explore() {
    Intern(initial_->Clone());
    const int colours = initial_->ColourCount();
    const int units = initial_->UnitCount();

    while (!frontier_.empty() && !Done()) {
      const int current = frontier_.front();
      frontier_.pop_front();
      SharedSystem& s = *states_[static_cast<std::size_t>(current)];

      // (a) the operation NEXTOP(s).
      const int active = s.Colour();
      Successor(
          current, [](SharedSystem& sys) { sys.ExecuteOperation(); },
          [&](const SharedSystem& before, const SharedSystem& after) {
            for (int c = 0; c < colours; ++c) {
              if (c != active) {
                Check(2, c, before.Abstract(c) == after.Abstract(c),
                      Format("operation of colour %d changed Φ of colour %d", active, c));
              }
            }
          });

      // (b) every input in the alphabet, into every unit.
      for (int unit = 0; unit < units; ++unit) {
        const int owner = s.UnitColour(unit);
        for (int value = 1; value <= options_.inputs_per_unit; ++value) {
          Successor(
              current,
              [&](SharedSystem& sys) { sys.InjectInput(unit, static_cast<Word>(value)); },
              [&](const SharedSystem& before, const SharedSystem& after) {
                for (int c = 0; c < colours; ++c) {
                  if (c != owner) {
                    Check(4, c, before.Abstract(c) == after.Abstract(c),
                          Format("input to unit %d visible to colour %d", unit, c));
                  }
                }
              });
        }
      }

      // (c) every unit's activity.
      for (int unit = 0; unit < units; ++unit) {
        const int owner = s.UnitColour(unit);
        Successor(
            current,
            [&](SharedSystem& sys) {
              sys.StepUnit(unit);
              (void)sys.DrainOutput(unit);  // keep the state space bounded
            },
            [&](const SharedSystem& before, const SharedSystem& after) {
              for (int c = 0; c < colours; ++c) {
                if (c != owner) {
                  Check(4, c, before.Abstract(c) == after.Abstract(c),
                        Format("activity of unit %d visible to colour %d", unit, c));
                }
              }
            });
      }
    }
    report_.complete = frontier_.empty() && !overflowed_ && !Done();
  }

  // Conditions with a two-state antecedent, over every Φ-equal pair.
  void CheckPairs() {
    const int colours = initial_->ColourCount();
    const int units = initial_->UnitCount();

    for (int c = 0; c < colours && !Done(); ++c) {
      // Group reachable states by Φ^c.
      std::map<std::vector<Word>, std::vector<int>> groups;
      for (std::size_t i = 0; i < states_.size(); ++i) {
        groups[states_[i]->Abstract(c).words].push_back(static_cast<int>(i));
      }

      for (const auto& [phi, members] : groups) {
        std::size_t pairs = 0;
        for (std::size_t a = 0; a < members.size() && !Done(); ++a) {
          for (std::size_t b = a + 1; b < members.size() && !Done(); ++b) {
            if (++pairs > options_.max_pairs_per_group) {
              break;
            }
            ++report_.pairs_checked;
            SharedSystem& sa = *states_[static_cast<std::size_t>(members[a])];
            SharedSystem& sb = *states_[static_cast<std::size_t>(members[b])];

            // Conditions 6 and 1: same colour + same Φ^c.
            if (sa.Colour() == c && sb.Colour() == c) {
              Check(6, c, sa.NextOperation() == sb.NextOperation(),
                    Format("NEXTOP differs for Φ-equal states of colour %d: %s vs %s", c,
                           sa.NextOperation().ToString().c_str(),
                           sb.NextOperation().ToString().c_str()));
              std::unique_ptr<SharedSystem> ta = sa.Clone();
              std::unique_ptr<SharedSystem> tb = sb.Clone();
              ta->ExecuteOperation();
              tb->ExecuteOperation();
              Check(1, c, ta->Abstract(c) == tb->Abstract(c),
                    Format("operation effect on colour %d differs across Φ-equal states", c));
            }

            // Conditions 3 and 5 for each unit of colour c.
            for (int unit = 0; unit < units; ++unit) {
              if (sa.UnitColour(unit) != c) {
                continue;
              }
              for (int value = 1; value <= options_.inputs_per_unit; ++value) {
                std::unique_ptr<SharedSystem> ta = sa.Clone();
                std::unique_ptr<SharedSystem> tb = sb.Clone();
                ta->InjectInput(unit, static_cast<Word>(value));
                tb->InjectInput(unit, static_cast<Word>(value));
                Check(3, c, ta->Abstract(c) == tb->Abstract(c),
                      Format("input effect on colour %d differs across Φ-equal states", c));
              }
              std::unique_ptr<SharedSystem> ta = sa.Clone();
              std::unique_ptr<SharedSystem> tb = sb.Clone();
              ta->StepUnit(unit);
              tb->StepUnit(unit);
              Check(3, c, ta->Abstract(c) == tb->Abstract(c),
                    Format("unit activity on colour %d differs across Φ-equal states", c));
              Check(5, c, ta->DrainOutput(unit) == tb->DrainOutput(unit),
                    Format("output of colour %d differs across Φ-equal states", c));
            }
          }
        }
      }
    }
  }

  bool Done() const {
    return static_cast<int>(report_.violations.size()) >= options_.max_violations;
  }

  const ExhaustiveOptions& options_;
  std::unique_ptr<SharedSystem> initial_;
  std::vector<std::unique_ptr<SharedSystem>> states_;
  std::map<std::vector<Word>, int> index_;
  std::deque<int> frontier_;
  bool overflowed_ = false;
  ExhaustiveReport report_;
};

}  // namespace

std::string ExhaustiveReport::Summary() const {
  std::string out = Format("%zu states, %zu transitions, %zu pairs, %s: ", states_explored,
                           transitions, pairs_checked, complete ? "COMPLETE" : "partial");
  for (int cond = 1; cond <= 6; ++cond) {
    const ConditionStats& s = conditions[static_cast<std::size_t>(cond)];
    out += Format("C%d %llu/%llu ", cond, static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.checks));
  }
  out += Passed() ? "=> SEPARABLE" : "=> VIOLATIONS";
  return out;
}

ExhaustiveReport CheckSeparabilityExhaustive(const SharedSystem& system,
                                             const ExhaustiveOptions& options) {
  return ExhaustiveRun(system, options).Run();
}

}  // namespace sep
