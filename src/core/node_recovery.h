// Crash-stop / checkpoint-recovery supervision of a KERNELIZED node.
//
// The distributed layer (src/distributed/network.h) recovers component
// processes through their own Checkpoint/Restore hooks; this header does the
// same for a whole kernelized machine, reusing the full-state snapshot
// machinery (Machine::SnapshotFullInto / RestoreFull via
// KernelizedSystem::FullState / RestoreFullState).
//
// The interesting part is not the state — it is the TRACE. Experiment E17
// demands that every regime's canonical per-colour trace be byte-identical
// to a run-alone of that regime; E18 extends the demand across a
// crash/restart boundary. A crash rolls the machine back to its newest
// checkpoint and deterministically RE-EXECUTES the lost quantum, which would
// re-emit every observable event of that quantum a second time. The
// supervisor therefore runs a write-ahead protocol over the trace itself:
//
//   * events drain from the process-wide obs recorder into a STAGING buffer;
//   * a checkpoint atomically snapshots the machine AND promotes staging to
//     the COMMITTED log — state and trace commit together;
//   * a crash discards staging along with the rolled-back state, so the
//     re-execution's identical events are recorded exactly once.
//
// Machine ticks keep advancing across a restore (the step counter is
// bookkeeping, not architectural state), so raw timestamps differ between a
// crashed and an uninterrupted run; the canonical per-colour trace
// (obs::CanonicalColourTrace) is deliberately timestamp-free, and over it
// the committed log of a crashed run is byte-identical to run-alone.
#ifndef SRC_CORE_NODE_RECOVERY_H_
#define SRC_CORE_NODE_RECOVERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/kernel_system.h"
#include "src/obs/trace.h"

namespace sep {

struct KernelNodeOptions {
  // Machine steps between checkpoints; 0 = genesis-only (every crash rolls
  // all the way back to the boot image).
  std::size_t checkpoint_interval = 256;
};

class KernelNodeSupervisor {
 public:
  using Options = KernelNodeOptions;

  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t crashes = 0;
    std::uint64_t warm_restores = 0;
    std::uint64_t cold_restarts = 0;
    // Steps of forward progress discarded by crashes (the recovery cost a
    // checkpoint interval buys down); bench_recovery measures its tail.
    std::uint64_t lost_steps = 0;
  };

  // Captures the genesis image immediately; the system must be freshly
  // booted. The caller owns the recorder lifecycle (obs::Recorder().Start
  // before the run, Stop after) exactly as in the E17 harness.
  explicit KernelNodeSupervisor(KernelizedSystem& system, Options options = {});

  // Runs up to `steps` machine steps in checkpoint-interval quanta,
  // checkpointing after each full quantum. Stops early when the system
  // finishes. Returns steps actually executed.
  std::size_t Run(std::size_t steps);

  // Crash-stop: discards staged (uncommitted) trace events with the
  // rolled-back state and restores the newest checkpoint — or the genesis
  // image when none exists (a cold restart). Returns false if the snapshot
  // failed to restore (the node is then lost; no further Run is meaningful).
  bool Crash();

  // Declares the run over: promotes the staged tail of the trace to the
  // committed log WITHOUT a snapshot. Only call when no further Crash()
  // will occur — committing events a later rollback would re-execute is
  // exactly the double-record the protocol exists to prevent.
  void Seal();

  // The committed (crash-consistent) event log, oldest first.
  const std::vector<obs::TraceEvent>& committed_events() const { return committed_; }
  const Stats& stats() const { return stats_; }

 private:
  void DrainIntoStaging();
  void Commit(bool snapshot);

  KernelizedSystem& system_;
  Options options_;
  std::vector<Word> genesis_;
  std::optional<std::vector<Word>> checkpoint_;
  std::vector<obs::TraceEvent> staging_;
  std::vector<obs::TraceEvent> committed_;
  std::size_t steps_since_checkpoint_ = 0;
  Stats stats_;
};

}  // namespace sep

#endif  // SRC_CORE_NODE_RECOVERY_H_
