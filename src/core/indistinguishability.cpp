#include "src/core/indistinguishability.h"

#include <algorithm>
#include <memory>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"

namespace sep {

namespace {

// One deployment under measurement: some number of kernelized systems (one
// per guest when distributed, exactly one when kernelized), plus the wiring
// between serial devices and the output logs.
struct Deployment {
  std::vector<std::unique_ptr<KernelizedSystem>> systems;
  // Guest i's device: (system index, device slot).
  struct DevRef {
    int system;
    int slot;
  };
  std::vector<DevRef> devices;
  std::vector<GuestTrace> traces;

  Device& GuestDevice(int guest) {
    const DevRef& ref = devices[static_cast<std::size_t>(guest)];
    return systems[static_cast<std::size_t>(ref.system)]->machine().device(ref.slot);
  }
};

Result<Deployment> BuildDistributed(const IndistConfig& config) {
  Deployment out;
  for (std::size_t g = 0; g < config.guests.size(); ++g) {
    const IndistGuest& guest = config.guests[g];
    SystemBuilder builder;
    int slot = builder.AddDevice(
        std::make_unique<SerialLine>("slu-" + guest.name, 16, 4, /*transmit_delay=*/2));
    Result<int> regime = builder.AddRegime(guest.name, guest.mem_words, guest.source, {slot});
    if (!regime.ok()) {
      return Err(regime.error());
    }
    Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
    if (!system.ok()) {
      return Err(system.error());
    }
    out.systems.push_back(std::move(system.value()));
    out.devices.push_back({static_cast<int>(g), slot});
  }
  out.traces.resize(config.guests.size());
  return out;
}

Result<Deployment> BuildKernelized(const IndistConfig& config) {
  Deployment out;
  SystemBuilder builder;
  std::vector<int> slots;
  for (const IndistGuest& guest : config.guests) {
    slots.push_back(builder.AddDevice(
        std::make_unique<SerialLine>("slu-" + guest.name, 16 + static_cast<int>(slots.size()) * 2,
                                     4, /*transmit_delay=*/2)));
  }
  for (std::size_t g = 0; g < config.guests.size(); ++g) {
    const IndistGuest& guest = config.guests[g];
    Result<int> regime =
        builder.AddRegime(guest.name, guest.mem_words, guest.source, {slots[g]});
    if (!regime.ok()) {
      return Err(regime.error());
    }
  }
  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  if (!system.ok()) {
    return Err(system.error());
  }
  out.systems.push_back(std::move(system.value()));
  for (std::size_t g = 0; g < config.guests.size(); ++g) {
    out.devices.push_back({0, slots[g]});
  }
  out.traces.resize(config.guests.size());
  return out;
}

// Runs one deployment to quiescence; fills traces; returns rounds used.
std::size_t RunDeployment(Deployment& deployment, const IndistConfig& config) {
  // Round 0 stimulus.
  for (const IndistConfig::Stimulus& stimulus : config.stimuli) {
    for (Word w : stimulus.words) {
      deployment.GuestDevice(stimulus.guest).InjectInput(w);
    }
  }

  std::size_t quiet = 0;
  std::size_t round = 0;
  for (; round < config.max_rounds && quiet < config.quiescent_rounds; ++round) {
    bool all_halted = true;
    for (auto& system : deployment.systems) {
      system->machine().Step();
      all_halted = all_halted && system->machine().halted();
    }

    // Wire shuttling: move transmitted words to the peer's receiver, and
    // log them as the guest's observable output.
    bool activity = false;
    for (std::size_t g = 0; g < config.guests.size(); ++g) {
      std::vector<Word> sent = deployment.GuestDevice(static_cast<int>(g)).DrainOutput();
      if (!sent.empty()) {
        activity = true;
      }
      GuestTrace& trace = deployment.traces[g];
      trace.output.insert(trace.output.end(), sent.begin(), sent.end());
      for (const IndistConfig::Wire& wire : config.wires) {
        if (wire.from == static_cast<int>(g)) {
          for (Word w : sent) {
            deployment.GuestDevice(wire.to).InjectInput(w);
          }
        }
      }
    }

    if (all_halted) {
      break;
    }
    quiet = activity ? 0 : quiet + 1;
  }

  // Final private memory per guest. In both deployments the guest is a
  // regime of SOME kernel; its partition is found through that kernel's
  // configuration.
  for (std::size_t g = 0; g < config.guests.size(); ++g) {
    const Deployment::DevRef& ref = deployment.devices[g];
    KernelizedSystem& system = *deployment.systems[static_cast<std::size_t>(ref.system)];
    const auto& regimes = system.kernel().config().regimes;
    // Distributed: single regime 0. Kernelized: regime g.
    const RegimeConfig& regime =
        regimes.size() == 1 ? regimes[0] : regimes[g];
    const std::uint32_t words =
        std::min(config.guests[g].compare_words, regime.mem_words);
    deployment.traces[g].final_memory =
        system.machine().memory().SnapshotRange(regime.mem_base, words);
    deployment.traces[g].halted =
        system.kernel().RegimeHalted(regimes.size() == 1 ? 0 : static_cast<int>(g));
  }
  return round;
}

}  // namespace

bool IndistResult::OutputsEqual() const {
  for (std::size_t g = 0; g < distributed.size(); ++g) {
    if (distributed[g].output != kernelized[g].output) {
      return false;
    }
  }
  return true;
}

bool IndistResult::MemoriesEqual() const {
  for (std::size_t g = 0; g < distributed.size(); ++g) {
    if (distributed[g].final_memory != kernelized[g].final_memory) {
      return false;
    }
  }
  return true;
}

Result<IndistResult> RunIndistinguishability(const IndistConfig& config) {
  Result<Deployment> distributed = BuildDistributed(config);
  if (!distributed.ok()) {
    return Err(distributed.error());
  }
  Result<Deployment> kernelized = BuildKernelized(config);
  if (!kernelized.ok()) {
    return Err(kernelized.error());
  }

  IndistResult result;
  result.distributed_rounds = RunDeployment(*distributed, config);
  result.kernelized_rounds = RunDeployment(*kernelized, config);
  result.distributed = std::move(distributed->traces);
  result.kernelized = std::move(kernelized->traces);
  return result;
}

}  // namespace sep
