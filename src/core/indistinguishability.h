// Experiment E11: the separation kernel's raison d'être, tested directly.
//
//   "its role is to provide each component of the system with an
//    environment which is indistinguishable from that which would be
//    provided by a truly and physically distributed system."
//
// The same guest programs (SM-11 assembly, each owning one serial line
// unit) are run in two deployments:
//
//   * DISTRIBUTED — one private machine per guest. Each machine runs a
//     separation kernel with a single regime: a degenerate kernel that
//     provides the identical kernel-call ABI but multiplexes nothing.
//   * KERNELIZED — one shared machine, all guests as regimes of one
//     separation kernel.
//
// In both deployments the guests' serial devices are joined by the same
// external wires, and the environment injects the same stimulus words.
// The indistinguishability claim then takes an observable form: each
// guest's transmitted word sequence and final private memory must be
// IDENTICAL across deployments, even though the kernelized guests execute
// interleaved with strangers. (Timing is not preserved — the shared
// processor is slower — and the overhead ratio is reported.)
#ifndef SRC_CORE_INDISTINGUISHABILITY_H_
#define SRC_CORE_INDISTINGUISHABILITY_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace sep {

struct IndistGuest {
  std::string name;
  std::string source;  // SM-11 assembly; the guest's SLU is at virtual 0xE000
  std::uint32_t mem_words = 1024;
  // How many words of the partition (from 0) to compare across deployments.
  // The guest's stack region must be excluded: interrupts arrive at
  // different instruction boundaries in the two deployments, so the dead
  // residue below the stack pointer (popped PC/PSW frames) legitimately
  // differs — it is not observable behaviour, just exhaust.
  std::uint32_t compare_words = 128;
};

struct IndistConfig {
  std::vector<IndistGuest> guests;

  // One-directional wires: everything guest `from` transmits arrives at
  // guest `to`'s receiver. Declare two wires for a full-duplex line.
  struct Wire {
    int from;
    int to;
  };
  std::vector<Wire> wires;

  // Stimulus words injected into a guest's serial receiver at round 0.
  struct Stimulus {
    int guest;
    std::vector<Word> words;
  };
  std::vector<Stimulus> stimuli;

  std::size_t max_rounds = 30000;
  // Stop after this many rounds with no external activity anywhere.
  std::size_t quiescent_rounds = 64;
};

struct GuestTrace {
  std::vector<Word> output;        // words the guest transmitted, in order
  std::vector<Word> final_memory;  // its private partition at the end
  bool halted = false;
};

struct IndistResult {
  std::vector<GuestTrace> distributed;
  std::vector<GuestTrace> kernelized;
  std::size_t distributed_rounds = 0;
  std::size_t kernelized_rounds = 0;

  bool OutputsEqual() const;
  bool MemoriesEqual() const;
  bool Indistinguishable() const { return OutputsEqual() && MemoriesEqual(); }
};

Result<IndistResult> RunIndistinguishability(const IndistConfig& config);

}  // namespace sep

#endif  // SRC_CORE_INDISTINGUISHABILITY_H_
