#include "src/core/kernel_system.h"

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace sep {

KernelizedSystem::KernelizedSystem(std::unique_ptr<Machine> machine, KernelConfig config)
    : machine_(std::move(machine)),
      kernel_(std::make_unique<SeparationKernel>(*machine_, std::move(config))) {}

Result<std::unique_ptr<KernelizedSystem>> KernelizedSystem::Adopt(
    std::unique_ptr<Machine> machine, KernelConfig config) {
  auto system = std::unique_ptr<KernelizedSystem>(
      new KernelizedSystem(std::move(machine), std::move(config)));
  if (Result<> r = system->kernel_->Adopt(); !r.ok()) {
    return Err(r.error());
  }
  return system;
}

std::unique_ptr<SharedSystem> KernelizedSystem::Clone() const {
  Result<std::unique_ptr<KernelizedSystem>> clone =
      Adopt(machine_->Clone(), kernel_->config());
  SEP_CHECK(clone.ok());
  return std::move(clone.value());
}

int KernelizedSystem::ColourCount() const {
  return static_cast<int>(kernel_->config().regimes.size());
}

std::string KernelizedSystem::ColourName(int colour) const {
  return kernel_->config().regimes[static_cast<std::size_t>(colour)].name;
}

int KernelizedSystem::Colour() const {
  // Mirrors the decision order of Machine::StepCpuPhase: deferred kernel
  // work (owned by the current regime), interrupt delivery (owned by the
  // device's owner), idle, or instruction execution by the current regime.
  if (kernel_->HasDeferredWork()) {
    return static_cast<int>(kernel_->CurrentRegime());
  }
  const int irq = machine_->PendingInterrupt();
  if (irq >= 0) {
    return kernel_->DeviceOwner(irq);
  }
  if (machine_->halted() || machine_->waiting()) {
    return kColourNone;
  }
  const Word cur = kernel_->CurrentRegime();
  return cur == kIdleRegime ? kColourNone : static_cast<int>(cur);
}

OperationId KernelizedSystem::NextOperation() const {
  OperationId op;
  if (kernel_->HasDeferredWork()) {
    op.kind = OperationId::Kind::kKernelWork;
    return op;
  }
  const int irq = machine_->PendingInterrupt();
  if (irq >= 0) {
    op.kind = OperationId::Kind::kInterrupt;
    op.detail = {static_cast<Word>(irq)};
    return op;
  }
  if (machine_->halted() || machine_->waiting()) {
    op.kind = OperationId::Kind::kIdle;
    return op;
  }
  op.kind = OperationId::Kind::kInstruction;
  const Word pc = machine_->cpu().pc();
  for (Word k = 0; k < 3; ++k) {
    std::optional<Word> w = machine_->PeekVirt(static_cast<VirtAddr>(pc + k));
    op.detail.push_back(w.value_or(0xFFFF));
  }
  return op;
}

void KernelizedSystem::ExecuteOperation() { machine_->StepCpuPhase(); }

AbstractState KernelizedSystem::Abstract(int colour) const {
  return AbstractState{kernel_->AbstractProjection(colour)};
}

int KernelizedSystem::UnitCount() const { return machine_->device_count(); }

int KernelizedSystem::UnitColour(int unit) const { return kernel_->DeviceOwner(unit); }

std::string KernelizedSystem::UnitName(int unit) const { return machine_->device(unit).name(); }

void KernelizedSystem::StepUnit(int unit) { machine_->StepDevicePhase(unit); }

void KernelizedSystem::InjectInput(int unit, Word value) {
  machine_->device(unit).InjectInput(value);
}

std::vector<Word> KernelizedSystem::DrainOutput(int unit) {
  return machine_->device(unit).DrainOutput();
}

void KernelizedSystem::PerturbOthers(int colour, Rng& rng) {
  kernel_->PerturbNonColour(colour, rng);
}

bool KernelizedSystem::Finished() const { return machine_->halted(); }

std::optional<std::vector<Word>> KernelizedSystem::FullState() const {
  // Supported, but practical only for microscopic configurations: the
  // serialization covers all of physical memory.
  return machine_->SnapshotFull();
}

void KernelizedSystem::AppendFullState(std::vector<Word>& out) const {
  machine_->SnapshotFullInto(out);
}

bool KernelizedSystem::RestoreFullState(std::span<const Word> state) {
  // The kernel keeps ALL of its dynamic state inside the machine's physical
  // memory (the invariant Machine documents for MachineClients), so
  // restoring the machine restores the kernel with it: the SeparationKernel
  // object holds only immutable configuration.
  return machine_->RestoreFull(state);
}

std::size_t KernelizedSystem::Run(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps && !machine_->halted()) {
    machine_->Step();
    ++steps;
  }
  return steps;
}

// --- SystemBuilder -------------------------------------------------------------

SystemBuilder::SystemBuilder() {
  machine_config_.memory_words = 1u << 15;
  next_base_ = 0;
}

SystemBuilder& SystemBuilder::WithMemoryWords(std::size_t words) {
  machine_config_.memory_words = words;
  return *this;
}

int SystemBuilder::AddDevice(std::unique_ptr<Device> device) {
  devices_.push_back(std::move(device));
  return static_cast<int>(devices_.size()) - 1;
}

Result<int> SystemBuilder::AddRegime(const std::string& name, std::uint32_t mem_words,
                                     const std::string& source, std::vector<int> device_slots) {
  Result<AssembledProgram> program = Assemble(source);
  if (!program.ok()) {
    return Err("assembling " + name + ": " + program.error());
  }
  // The image is loaded at its assembled base (matters for .ORG programs).
  Result<int> regime = AddRegimeImage(name, mem_words, program->EntryPoint(), program->words,
                                      std::move(device_slots));
  if (regime.ok()) {
    images_.back().base = program->base;
  }
  return regime;
}

Result<int> SystemBuilder::AddRegimeImage(const std::string& name, std::uint32_t mem_words,
                                          Word entry, std::vector<Word> image,
                                          std::vector<int> device_slots) {
  if (entry + image.size() > mem_words) {
    return Err("image for " + name + " larger than its partition");
  }
  RegimeConfig regime;
  regime.name = name;
  regime.mem_base = next_base_;
  regime.mem_words = mem_words;
  regime.entry = entry;
  regime.device_slots = std::move(device_slots);
  next_base_ += mem_words;
  kernel_config_.regimes.push_back(regime);

  const int index = static_cast<int>(kernel_config_.regimes.size()) - 1;
  images_.push_back(Image{index, 0, std::move(image)});
  return index;
}

int SystemBuilder::AddChannel(const std::string& name, int sender, int receiver,
                              std::uint32_t capacity) {
  kernel_config_.channels.push_back(ChannelConfig{name, sender, receiver, capacity});
  return static_cast<int>(kernel_config_.channels.size()) - 1;
}

int SystemBuilder::AddSharedRing(const std::string& name, int producer, int consumer,
                                 std::uint32_t capacity) {
  // data_base is assigned at Build() time, once all regime partitions and
  // the kernel partition have been carved.
  kernel_config_.shared_rings.push_back(SharedRingConfig{name, producer, consumer, capacity, 0});
  return static_cast<int>(kernel_config_.shared_rings.size()) - 1;
}

SystemBuilder& SystemBuilder::CutChannels(bool cut) {
  kernel_config_.cut_channels = cut;
  return *this;
}

SystemBuilder& SystemBuilder::WithFaults(const KernelFaults& faults) {
  kernel_config_.faults = faults;
  return *this;
}

Result<std::unique_ptr<KernelizedSystem>> SystemBuilder::Build() {
  // The kernel partition is carved after all regime partitions, and shared-
  // ring data regions after the kernel partition (outside every partition:
  // reachable only through the MMU windows the kernel programs).
  kernel_config_.kernel_base = next_base_;
  kernel_config_.kernel_words = RequiredKernelWords(kernel_config_);
  PhysAddr ring_base = kernel_config_.kernel_base + kernel_config_.kernel_words;
  for (SharedRingConfig& ring : kernel_config_.shared_rings) {
    ring.data_base = ring_base;
    ring_base += ring.capacity;
  }
  if (ring_base > machine_config_.memory_words) {
    return Err(Format("partitions exceed physical memory (%u words needed, %zu present)",
                      ring_base, machine_config_.memory_words));
  }

  auto machine = std::make_unique<Machine>(machine_config_);
  for (auto& device : devices_) {
    machine->AddDevice(std::move(device));
  }
  devices_.clear();

  auto system = std::unique_ptr<KernelizedSystem>(
      new KernelizedSystem(std::move(machine), kernel_config_));
  for (const Image& image : images_) {
    if (Result<> r = system->kernel().LoadRegimeImage(image.regime, image.base, image.words);
        !r.ok()) {
      return Err(r.error());
    }
  }
  if (Result<> r = system->kernel().Boot(); !r.ok()) {
    return Err(r.error());
  }
  return system;
}

}  // namespace sep
