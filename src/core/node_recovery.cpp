#include "src/core/node_recovery.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace sep {

namespace {

// Kernel-node recovery observability. Counters only — deliberately no trace
// events: the committed log must contain exactly the events a crash-free
// run would produce, so the supervisor never injects events of its own.
obs::Counter& CrashCounter() {
  static obs::Counter& c = obs::Metrics().GetCounter("core.node_crashes");
  return c;
}
obs::Counter& RestoreCounter() {
  static obs::Counter& c = obs::Metrics().GetCounter("core.node_restores");
  return c;
}
obs::Counter& RecoveryTicksCounter() {
  static obs::Counter& c = obs::Metrics().GetCounter("core.recovery_ticks");
  return c;
}

}  // namespace

KernelNodeSupervisor::KernelNodeSupervisor(KernelizedSystem& system, Options options)
    : system_(system), options_(options) {
  // A kernelized machine always serializes (every built-in device supports
  // RestoreState); FullState only fails for exotic devices, in which case
  // crashes degrade to cold restarts of an empty image — tests would catch
  // that immediately, so no stronger handling is needed here.
  if (std::optional<std::vector<Word>> genesis = system_.FullState()) {
    genesis_ = std::move(*genesis);
  }
}

void KernelNodeSupervisor::DrainIntoStaging() {
  std::vector<obs::TraceEvent> drained = obs::Recorder().Drain();
  staging_.insert(staging_.end(), drained.begin(), drained.end());
}

void KernelNodeSupervisor::Commit(bool snapshot) {
  if (snapshot) {
    std::vector<Word> image;
    system_.AppendFullState(image);
    checkpoint_ = std::move(image);
    steps_since_checkpoint_ = 0;
    ++stats_.checkpoints;
  }
  committed_.insert(committed_.end(), staging_.begin(), staging_.end());
  staging_.clear();
}

std::size_t KernelNodeSupervisor::Run(std::size_t steps) {
  std::size_t executed = 0;
  while (executed < steps && !system_.Finished()) {
    std::size_t quantum = steps - executed;
    if (options_.checkpoint_interval > 0) {
      const std::size_t to_boundary = options_.checkpoint_interval - steps_since_checkpoint_;
      quantum = std::min(quantum, to_boundary);
    }
    const std::size_t took = system_.Run(quantum);
    executed += took;
    steps_since_checkpoint_ += took;
    DrainIntoStaging();
    if (options_.checkpoint_interval > 0 &&
        steps_since_checkpoint_ >= options_.checkpoint_interval) {
      Commit(/*snapshot=*/true);
    }
    if (took < quantum) {
      break;  // every regime halted mid-quantum
    }
  }
  return executed;
}

bool KernelNodeSupervisor::Crash() {
  // The staged events belong to state the rollback is about to destroy;
  // deterministic re-execution will regenerate them identically.
  DrainIntoStaging();
  staging_.clear();
  ++stats_.crashes;
  CrashCounter().Add();
  stats_.lost_steps += steps_since_checkpoint_;
  RecoveryTicksCounter().Add(steps_since_checkpoint_);
  steps_since_checkpoint_ = 0;

  const bool cold = !checkpoint_.has_value();
  const std::vector<Word>& image = cold ? genesis_ : *checkpoint_;
  if (image.empty() || !system_.RestoreFullState(image)) {
    return false;
  }
  if (cold) {
    ++stats_.cold_restarts;
  } else {
    ++stats_.warm_restores;
  }
  RestoreCounter().Add();
  return true;
}

void KernelNodeSupervisor::Seal() {
  DrainIntoStaging();
  Commit(/*snapshot=*/false);
}

}  // namespace sep
