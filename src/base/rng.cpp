#include "src/base/rng.h"

namespace sep {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) {
    lane = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw = Next();
  while (draw >= limit) {
    draw = Next();
  }
  return draw % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

bool Rng::NextChance(std::uint64_t numer, std::uint64_t denom) {
  return NextBelow(denom) < numer;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace sep
