// Work-stealing frontier scheduling for the exhaustive checker.
//
// The level-synchronous BFS of PR 3/4 funnelled every intern through one
// merge thread and dispatched expansion work in fixed 64-state batches, so
// `exhaustive_parallel_speedup` never moved off 1.0: workers spent most of
// each level waiting at the batch barrier. This header replaces that with
// the classic explicit-state-exploration shape (multi-core SPIN lineage):
//
//   * StealDeque — a Chase–Lev double-ended queue of 64-bit items. The
//     owning worker pushes and pops at the bottom (LIFO, cache-warm);
//     idle workers steal from the top (FIFO, oldest work first). Memory
//     ordering follows Lê et al. "Correct and Efficient Work-Stealing for
//     Weak Memory Models", but uses seq_cst operations on the top/bottom
//     pair instead of standalone fences: ThreadSanitizer does not model
//     atomic_thread_fence, and the CI tsan matrix job must be able to
//     reason about this structure. At the checker's work granularity
//     (one state expansion is tens of microseconds) the difference is
//     noise.
//
//   * StealScheduler — one deque per worker, a pending-work counter for
//     termination detection, and seeded pseudo-random victim selection.
//     The seed is the schedule-perturbation hook: different seeds yield
//     different steal orders, and the determinism tests assert that the
//     checker's report is byte-identical across all of them (the report
//     is produced by a canonical post-pass, never by scheduling luck —
//     see src/core/exhaustive.cpp).
//
// Determinism contract: nothing in this header is deterministic. Callers
// must treat item processing order as adversarial and derive any
// deterministic output from a canonical replay of recorded results.
#ifndef SRC_BASE_WORK_STEAL_H_
#define SRC_BASE_WORK_STEAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/thread_pool.h"

namespace sep {

// Chase–Lev work-stealing deque of int64 items. Push/Pop are owner-only;
// TrySteal may be called from any thread. Grows without bound (old buffers
// are retired, not freed, until destruction, so a thief holding a stale
// buffer pointer always reads valid memory).
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity = 256) {
    std::size_t cap = 8;
    while (cap < capacity) {
      cap *= 2;
    }
    buffer_.store(NewBuffer(cap), std::memory_order_relaxed);
  }

  ~StealDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) {
      delete b;
    }
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Owner only.
  void Push(std::int64_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->mask)) {
      buf = Grow(buf, t, b);
    }
    buf->cells[static_cast<std::size_t>(b) & buf->mask].store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. Takes the most recently pushed item (LIFO).
  bool Pop(std::int64_t* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) {
      *out = buf->cells[static_cast<std::size_t>(b) & buf->mask].load(std::memory_order_relaxed);
      return true;
    }
    if (t == b) {
      // Last item: race a potential thief for it.
      *out = buf->cells[static_cast<std::size_t>(b) & buf->mask].load(std::memory_order_relaxed);
      const bool won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                    std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return won;
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return false;
  }

  enum class StealResult { kGot, kEmpty, kLost };

  // Any thread. Takes the oldest item (FIFO).
  StealResult TrySteal(std::int64_t* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return StealResult::kEmpty;
    }
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    const std::int64_t item =
        buf->cells[static_cast<std::size_t>(t) & buf->mask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return StealResult::kLost;
    }
    *out = item;
    return StealResult::kGot;
  }

  // Approximate; exact when no other thread is active.
  std::size_t SizeApprox() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Buffer {
    std::size_t mask;
    std::unique_ptr<std::atomic<std::int64_t>[]> cells;
  };

  static Buffer* NewBuffer(std::size_t cap) {
    Buffer* b = new Buffer;
    b->mask = cap - 1;
    b->cells = std::make_unique<std::atomic<std::int64_t>[]>(cap);
    return b;
  }

  Buffer* Grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* grown = NewBuffer((old->mask + 1) * 2);
    for (std::int64_t i = t; i < b; ++i) {
      grown->cells[static_cast<std::size_t>(i) & grown->mask].store(
          old->cells[static_cast<std::size_t>(i) & old->mask].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    buffer_.store(grown, std::memory_order_release);
    retired_.push_back(old);  // thieves may still hold the old pointer
    return grown;
  }

  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

// One deque per worker plus termination detection. Usage:
//
//   StealScheduler sched(pool.size(), seed);
//   sched.Seed(item0);               // before Run, single-threaded
//   sched.Run(pool, [&](std::int64_t item, int worker) {
//     ...;                           // may call sched.Emit(worker, child)
//   });
//
// Run returns once every seeded and emitted item has been processed.
// Workers prefer their own deque (LIFO), then steal from victims in a
// per-worker pseudo-random order derived from `seed` — vary the seed to
// perturb the schedule without touching the workload.
class StealScheduler {
 public:
  StealScheduler(int workers, std::uint64_t seed) : lanes_(static_cast<std::size_t>(workers)) {
    SEP_CHECK(workers >= 1);
    for (std::size_t w = 0; w < lanes_.size(); ++w) {
      lanes_[w] = std::make_unique<Lane>();
      // Odd-forced xorshift seed per worker; Mix64 decorrelates worker ids.
      lanes_[w]->rng = Mix64(seed ^ (0x9E3779B97F4A7C15ULL * (w + 1))) | 1;
    }
  }

  // Single-threaded, before Run. Items are dealt round-robin across lanes
  // so a wide seed set starts balanced even before any steal happens.
  void Seed(std::int64_t item) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    lanes_[seed_cursor_]->deque.Push(item);
    seed_cursor_ = (seed_cursor_ + 1) % lanes_.size();
  }

  // From inside Run's body only: `worker` must be the body's worker index.
  void Emit(int worker, std::int64_t item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    lanes_[static_cast<std::size_t>(worker)]->deque.Push(item);
  }

  template <typename Body>
  void Run(ThreadPool& pool, Body&& body) {
    SEP_CHECK(static_cast<std::size_t>(pool.size()) == lanes_.size());
    pool.ParallelFor(lanes_.size(), [&](std::size_t w) { WorkerLoop(static_cast<int>(w), body); });
  }

  std::uint64_t steal_count() const {
    std::uint64_t total = 0;
    for (const auto& lane : lanes_) {
      total += lane->steals;
    }
    return total;
  }

  std::uint64_t processed(int worker) const {
    return lanes_[static_cast<std::size_t>(worker)]->processed;
  }

 private:
  struct alignas(64) Lane {
    StealDeque deque;
    std::uint64_t rng = 1;
    std::uint64_t steals = 0;
    std::uint64_t processed = 0;
  };

  static std::uint64_t NextRng(std::uint64_t& x) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }

  template <typename Body>
  void WorkerLoop(int w, Body& body) {
    Lane& lane = *lanes_[static_cast<std::size_t>(w)];
    const std::size_t n = lanes_.size();
    for (;;) {
      std::int64_t item;
      if (lane.deque.Pop(&item)) {
        body(item, w);
        ++lane.processed;
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (n > 1) {
        // One randomized pass over the other lanes; kLost retries within
        // the pass (someone has work — contend for it).
        bool got = false;
        for (std::size_t attempt = 0; attempt < 2 * n && !got; ++attempt) {
          const std::size_t victim = (w + 1 + NextRng(lane.rng) % (n - 1)) % n;
          switch (lanes_[victim]->deque.TrySteal(&item)) {
            case StealDeque::StealResult::kGot:
              ++lane.steals;
              got = true;
              break;
            case StealDeque::StealResult::kLost:
            case StealDeque::StealResult::kEmpty:
              break;
          }
        }
        if (got) {
          body(item, w);
          ++lane.processed;
          pending_.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
      }
      if (pending_.load(std::memory_order_acquire) == 0) {
        return;
      }
      std::this_thread::yield();
    }
  }

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::int64_t> pending_{0};
  std::size_t seed_cursor_ = 0;
};

}  // namespace sep

#endif  // SRC_BASE_WORK_STEAL_H_
