#include "src/base/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sep {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_level) {
    return;
  }
  // Strip directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace sep
