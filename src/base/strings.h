// Small string helpers shared across the assembler, the IFA front end and
// the reporting code. Kept deliberately minimal: only what the repository
// actually uses.
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sep {

// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

// Formats a 16-bit word as a 6-digit octal literal (PDP-11 listing style).
std::string Octal(std::uint16_t word);

// Formats a 16-bit word as 0xHHHH.
std::string Hex(std::uint16_t word);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Strict numeric parsing for CLI input. Unlike atoi/strtol-with-nullptr,
// these reject empty input, leading/trailing junk ("12x", " 7", "1e3" for
// integers) and out-of-range values instead of silently returning 0 — a
// silent zero turns "--tolerance abc" into a hard-fail gate and
// "--jobs x" into a zero-thread run. nullopt means "not a number you may
// act on"; the caller prints usage and exits non-zero.
//
// ParseInt accepts an optional leading '-'/'+' and, with base 0, the usual
// 0x/0 prefixes; the value must lie in [min, max].
std::optional<long long> ParseInt(std::string_view text, long long min, long long max,
                                  int base = 10);

// ParseDouble accepts what strtod accepts, minus inf/nan and minus any
// trailing junk; the result must be finite.
std::optional<double> ParseDouble(std::string_view text);

}  // namespace sep

#endif  // SRC_BASE_STRINGS_H_
