// Open-addressing hash index over externally stored records.
//
// The exhaustive checker interns millions of serialized machine states and
// their deduplicated content chunks. A node-based std::unordered_map keyed
// by std::vector<Word> costs a heap key vector plus a node allocation per
// entry and re-hashes the key on every probe. This index stores only 32-bit
// record ids in a flat power-of-two table; the caller keeps the records
// (and their precomputed 64-bit hashes) in its own flat arrays and supplies
// comparison/hash callbacks, so a probe is a cache line of ids plus however
// many candidate comparisons the caller's `equals` needs.
//
// Not thread-safe for writes. Find() is safe concurrently with other
// Find()s, which the checker exploits: workers probe a frozen index while
// only the merge thread inserts between parallel phases.
#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <cstdint>
#include <vector>

namespace sep {

class HashIndex {
 public:
  explicit HashIndex(std::size_t initial_slots = 64) {
    std::size_t cap = 16;
    while (cap < initial_slots) {
      cap *= 2;
    }
    slots_.assign(cap, kEmpty);
  }

  std::size_t size() const { return size_; }
  std::size_t bytes() const { return slots_.capacity() * sizeof(std::int32_t); }

  // Returns the id of the record matching `hash`/`equals`, or -1. `equals`
  // receives a candidate id; it should reject cheaply (e.g. by comparing the
  // caller's stored hash) before any deep comparison.
  template <typename Equals>
  std::int32_t Find(std::uint64_t hash, Equals&& equals) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const std::int32_t id = slots_[i];
      if (id == kEmpty) {
        return -1;
      }
      if (equals(id)) {
        return id;
      }
    }
  }

  // Inserts `id` for `hash`. The caller must have established (via Find)
  // that no equal record is present. `hash_of` maps an existing id to its
  // hash; it is used to re-place ids when the table grows.
  template <typename HashOf>
  void Insert(std::uint64_t hash, std::int32_t id, HashOf&& hash_of) {
    // Grow at 70% load so probe chains stay short.
    if ((size_ + 1) * 10 >= slots_.size() * 7) {
      std::vector<std::int32_t> old = std::move(slots_);
      slots_.assign(old.size() * 2, kEmpty);
      for (std::int32_t existing : old) {
        if (existing != kEmpty) {
          Place(hash_of(existing), existing);
        }
      }
    }
    Place(hash, id);
    ++size_;
  }

 private:
  static constexpr std::int32_t kEmpty = -1;

  void Place(std::uint64_t hash, std::int32_t id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (slots_[i] != kEmpty) {
      i = (i + 1) & mask;
    }
    slots_[i] = id;
  }

  std::vector<std::int32_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace sep

#endif  // SRC_BASE_ARENA_H_
