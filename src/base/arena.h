// Open-addressing hash index over externally stored records.
//
// The exhaustive checker interns millions of serialized machine states and
// their deduplicated content chunks. A node-based std::unordered_map keyed
// by std::vector<Word> costs a heap key vector plus a node allocation per
// entry and re-hashes the key on every probe. This index stores only 32-bit
// record ids in a flat power-of-two table; the caller keeps the records
// (and their precomputed 64-bit hashes) in its own flat arrays and supplies
// comparison/hash callbacks, so a probe is a cache line of ids plus however
// many candidate comparisons the caller's `equals` needs.
//
// HashIndex itself is not thread-safe for writes (Find() is safe
// concurrently with other Find()s). ShardedIndex below wraps a fixed set
// of independently locked HashIndex shards routed by the top bits of the
// content hash, which is what the work-stealing checker interns through:
// writers contend only when two records hash into the same shard.
#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace sep {

class HashIndex {
 public:
  explicit HashIndex(std::size_t initial_slots = 64) {
    std::size_t cap = 16;
    while (cap < initial_slots) {
      cap *= 2;
    }
    slots_.assign(cap, kEmpty);
  }

  std::size_t size() const { return size_; }
  std::size_t bytes() const { return slots_.capacity() * sizeof(std::int32_t); }

  // Returns the id of the record matching `hash`/`equals`, or -1. `equals`
  // receives a candidate id; it should reject cheaply (e.g. by comparing the
  // caller's stored hash) before any deep comparison.
  template <typename Equals>
  std::int32_t Find(std::uint64_t hash, Equals&& equals) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const std::int32_t id = slots_[i];
      if (id == kEmpty) {
        return -1;
      }
      if (equals(id)) {
        return id;
      }
    }
  }

  // Inserts `id` for `hash`. The caller must have established (via Find)
  // that no equal record is present. `hash_of` maps an existing id to its
  // hash; it is used to re-place ids when the table grows.
  template <typename HashOf>
  void Insert(std::uint64_t hash, std::int32_t id, HashOf&& hash_of) {
    // Grow at 70% load so probe chains stay short.
    if ((size_ + 1) * 10 >= slots_.size() * 7) {
      std::vector<std::int32_t> old = std::move(slots_);
      slots_.assign(old.size() * 2, kEmpty);
      for (std::int32_t existing : old) {
        if (existing != kEmpty) {
          Place(hash_of(existing), existing);
        }
      }
    }
    Place(hash, id);
    ++size_;
  }

 private:
  static constexpr std::int32_t kEmpty = -1;

  void Place(std::uint64_t hash, std::int32_t id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (slots_[i] != kEmpty) {
      i = (i + 1) & mask;
    }
    slots_[i] = id;
  }

  std::vector<std::int32_t> slots_;
  std::size_t size_ = 0;
};

// Shard routing shared by every concurrently-growable intern structure.
//
// A record's shard is a pure function of its 64-bit content hash (the top
// kShardBits bits), never of the interning thread — so the sharded layout
// of a finished store is identical for every steal schedule, which the
// deterministic post-pass in the exhaustive checker depends on. The shard
// count is a fixed constant, NOT derived from the thread count, for the
// same reason.
//
// Packed ids carry the shard in the high bits and the shard-local ordinal
// in the low bits, leaving the sign bit clear so -1 stays usable as the
// universal "absent" sentinel alongside plain HashIndex ids.
inline constexpr int kShardBits = 6;
inline constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;
inline constexpr int kShardLocalBits = 31 - kShardBits;
inline constexpr std::size_t kShardLocalMax = (std::size_t{1} << kShardLocalBits) - 1;

inline constexpr std::size_t ShardForHash(std::uint64_t hash) { return hash >> (64 - kShardBits); }

inline constexpr std::int32_t PackShardId(std::size_t shard, std::size_t local) {
  return static_cast<std::int32_t>((shard << kShardLocalBits) | local);
}

inline constexpr std::size_t ShardOfId(std::int32_t packed) {
  return static_cast<std::size_t>(packed) >> kShardLocalBits;
}

inline constexpr std::size_t LocalOfId(std::int32_t packed) {
  return static_cast<std::size_t>(packed) & kShardLocalMax;
}

// kShardCount independently locked HashIndex shards. The caller keeps the
// records in its own per-shard flat arrays (indexed by shard-local id) and
// guards them with the same shard mutex via the FindOrInsert callbacks, so
// a packed id returned from any thread always refers to a fully published
// record.
//
// Concurrent growth of each shard's HashIndex happens inside that shard's
// critical section; the tsan matrix job runs tests/work_steal_test.cpp to
// certify the whole arrangement under race detection.
class ShardedIndex {
 public:
  struct Shard {
    mutable std::mutex mu;
    HashIndex index;
  };

  Shard& shard(std::size_t s) { return shards_[s]; }
  const Shard& shard(std::size_t s) const { return shards_[s]; }

  // Looks up `hash` in its home shard; on a miss, appends a new record and
  // publishes it. All three callbacks run under the shard lock and receive
  // shard-local ids:
  //   equals(local)  -> bool   deep-compare candidate `local` to the key
  //   append()       -> local  append the record to the caller's shard
  //                            arrays, return its shard-local id
  //   hash_of(local) -> hash   existing record's hash (for index growth)
  // Returns {packed id, inserted}.
  template <typename Equals, typename Append, typename HashOf>
  std::pair<std::int32_t, bool> FindOrInsert(std::uint64_t hash, Equals&& equals, Append&& append,
                                             HashOf&& hash_of) {
    const std::size_t s = ShardForHash(hash);
    Shard& sh = shards_[s];
    std::lock_guard<std::mutex> lock(sh.mu);
    const std::int32_t local = sh.index.Find(hash, equals);
    if (local >= 0) {
      return {PackShardId(s, static_cast<std::size_t>(local)), false};
    }
    const std::size_t fresh = append();
    sh.index.Insert(hash, static_cast<std::int32_t>(fresh), hash_of);
    return {PackShardId(s, fresh), true};
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      total += sh.index.size();
    }
    return total;
  }

  std::size_t max_load() const {
    std::size_t peak = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      peak = peak > sh.index.size() ? peak : sh.index.size();
    }
    return peak;
  }

  std::size_t bytes() const {
    std::size_t total = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      total += sh.index.bytes();
    }
    return total;
  }

 private:
  std::array<Shard, kShardCount> shards_;
};

}  // namespace sep

#endif  // SRC_BASE_ARENA_H_
