// Minimal leveled logging.
//
// The simulator is deterministic and most diagnostics flow through explicit
// trace objects, so logging is reserved for configuration errors and for the
// optional verbose mode of example binaries. The global level defaults to
// kWarning so tests and benches stay quiet.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace sep {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: emits a finished message. Exposed for the macro below.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace sep

#define SEP_LOG(level) ::sep::LogLine(::sep::LogLevel::level, __FILE__, __LINE__)

// Fatal invariant failure: prints and aborts. Used for programming errors
// (corrupt simulator state), never for guest-observable conditions.
#define SEP_CHECK(cond)                                                            \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      ::sep::LogMessage(::sep::LogLevel::kError, __FILE__, __LINE__,               \
                        std::string("CHECK failed: ") + #cond);                    \
      ::std::abort();                                                              \
    }                                                                              \
  } while (0)

// Debug-only variant for per-word hot paths (memory access, MMU walks) where
// the check cost is measurable at interpreter scale. Compiled out whenever
// NDEBUG is defined — which includes the default RelWithDebInfo build and the
// Release benchmark configuration — but fully active in Debug builds. The
// condition is never evaluated in release; keep side effects out of it.
#ifdef NDEBUG
#define SEP_DCHECK(cond) \
  do {                   \
  } while (false && (cond))
#else
#define SEP_DCHECK(cond) SEP_CHECK(cond)
#endif

#endif  // SRC_BASE_LOGGING_H_
