// A small fixed-size worker pool with a blocking parallel-for.
//
// Built for the verification workloads in this repo (parallel exhaustive
// frontier expansion, Φ-pair checking, sepcheck --jobs): the unit of work is
// a pure function of index `i` writing only to its own output slot, and the
// caller needs a barrier at the end. Determinism is the callers'
// responsibility and their design: workers compute results into per-index
// slots, and the caller merges them in canonical index order, so the report
// produced is independent of scheduling (see src/core/exhaustive.cpp and
// docs/PERFORMANCE.md).
//
// A pool of size 1 spawns no threads and runs bodies inline, so serial
// configurations stay genuinely single-threaded.
#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sep {

class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread;
  // 0 means HardwareThreads(). The pool spawns threads - 1 workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes body(i) for every i in [0, n), in unspecified order on
  // unspecified threads (including the caller), and returns once all calls
  // completed. Not reentrant: body must not call ParallelFor on this pool.
  // Bodies must not throw.
  //
  // With no workers or a single iteration the loop runs inline on the
  // caller: no std::function is materialized, no task is posted and no
  // condition-variable round trip happens, so single-thread hosts pay plain
  // loop cost (BENCH_3's exhaustive_parallel_speedup 0.96 was exactly this
  // overhead). Only the pooled path type-erases the body.
  template <typename Body>
  void ParallelFor(std::size_t n, Body&& body) {
    if (n == 0) {
      return;
    }
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        body(i);
      }
      return;
    }
    const std::function<void(std::size_t)> fn = std::ref(body);
    ParallelForPooled(n, fn);
  }

  // Grained variant: workers claim [i, i+grain) index blocks per atomic
  // fetch instead of one index at a time, cutting contention on the shared
  // cursor when bodies are cheap. Iteration order within a block is
  // ascending; block assignment is unspecified. grain == 1 is exactly the
  // plain overload.
  template <typename Body>
  void ParallelFor(std::size_t n, std::size_t grain, Body&& body) {
    if (grain <= 1 || workers_.empty() || n <= grain) {
      ParallelFor(n, body);
      return;
    }
    const std::size_t blocks = (n + grain - 1) / grain;
    ParallelFor(blocks, [&](std::size_t block) {
      const std::size_t begin = block * grain;
      const std::size_t end = begin + grain < n ? begin + grain : n;
      for (std::size_t i = begin; i < end; ++i) {
        body(i);
      }
    });
  }

  // Batch size that adapts to both pool width and problem width: small
  // enough that every thread gets several blocks (load balance against
  // uneven bodies), large enough to amortize the shared cursor. The old
  // checker used a fixed 64-state dispatch batch, which starved wide pools
  // on narrow BFS levels.
  static std::size_t AdaptiveGrain(std::size_t n, int threads) {
    if (threads <= 1 || n == 0) {
      return n == 0 ? 1 : n;
    }
    // Aim for ~4 blocks per thread, clamped to [1, 1024].
    std::size_t grain = n / (static_cast<std::size_t>(threads) * 4);
    if (grain < 1) {
      grain = 1;
    }
    if (grain > 1024) {
      grain = 1024;
    }
    return grain;
  }

  // Index of the calling thread within this pool's parallelism: 0 for the
  // thread that owns the pool (and runs inline / participates in jobs),
  // 1..workers for pool workers. Callers use it to pick a scratch slot that
  // is theirs for the duration of one ParallelFor body.
  static int CurrentWorkerIndex() { return worker_index_; }

  static int HardwareThreads();

 private:
  void ParallelForPooled(std::size_t n, const std::function<void(std::size_t)>& body);
  void WorkerMain(int index);

  static thread_local int worker_index_;

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals a new job epoch or shutdown
  std::condition_variable done_cv_;  // signals workers drained from a job
  std::uint64_t epoch_ = 0;          // bumped per ParallelFor (guarded by mu_)
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mu_
  std::size_t n_ = 0;                                       // guarded by mu_
  std::atomic<std::size_t> next_{0};
  int active_ = 0;  // workers still inside the current job (guarded by mu_)
  bool stop_ = false;
};

}  // namespace sep

#endif  // SRC_BASE_THREAD_POOL_H_
