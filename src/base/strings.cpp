#include "src/base/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sep {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Octal(std::uint16_t word) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%06o", word);
  return buf;
}

std::string Hex(std::uint16_t word) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", word);
  return buf;
}

std::optional<long long> ParseInt(std::string_view text, long long min, long long max,
                                  int base) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    return std::nullopt;  // strtoll would skip leading whitespace; we don't
  }
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, base);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  if (value < min || value > max) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    return std::nullopt;
  }
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || errno == ERANGE || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sep
