// FNV-1a hashing utilities.
//
// The Proof-of-Separability checker compares abstract states by value. For
// large state vectors (whole memory partitions) it first compares 64-bit
// digests, falling back to full comparison on digest equality only in debug
// checks. FNV-1a is used because it is simple, deterministic across
// platforms, and fast enough at the word granularity the simulator uses.
#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sep {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

class Hasher {
 public:
  Hasher() = default;

  Hasher& Mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (value >> (8 * i)) & 0xFF;
      digest_ *= kFnvPrime;
    }
    return *this;
  }

  Hasher& MixBytes(std::string_view bytes) {
    for (unsigned char b : bytes) {
      digest_ ^= b;
      digest_ *= kFnvPrime;
    }
    return *this;
  }

  template <typename T>
  Hasher& MixRange(const std::vector<T>& values) {
    Mix(values.size());
    for (const T& v : values) {
      Mix(static_cast<std::uint64_t>(v));
    }
    return *this;
  }

  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t digest_ = kFnvOffset;
};

inline std::uint64_t HashBytes(std::string_view bytes) {
  return Hasher().MixBytes(bytes).digest();
}

}  // namespace sep

#endif  // SRC_BASE_HASH_H_
