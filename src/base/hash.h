// FNV-1a hashing utilities.
//
// The Proof-of-Separability checker compares abstract states by value. For
// large state vectors (whole memory partitions) it first compares 64-bit
// digests, falling back to full comparison on digest equality only in debug
// checks. FNV-1a is used because it is simple, deterministic across
// platforms, and fast enough at the word granularity the simulator uses.
#ifndef SRC_BASE_HASH_H_
#define SRC_BASE_HASH_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace sep {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

class Hasher {
 public:
  Hasher() = default;

  Hasher& Mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (value >> (8 * i)) & 0xFF;
      digest_ *= kFnvPrime;
    }
    return *this;
  }

  Hasher& MixBytes(std::string_view bytes) {
    for (unsigned char b : bytes) {
      digest_ ^= b;
      digest_ *= kFnvPrime;
    }
    return *this;
  }

  template <typename T>
  Hasher& MixRange(const std::vector<T>& values) {
    Mix(values.size());
    for (const T& v : values) {
      Mix(static_cast<std::uint64_t>(v));
    }
    return *this;
  }

  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t digest_ = kFnvOffset;
};

inline std::uint64_t HashBytes(std::string_view bytes) {
  return Hasher().MixBytes(bytes).digest();
}

// splitmix64 finalizer: a full-avalanche mix of one 64-bit lane.
inline constexpr std::uint64_t Mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Fast hash over a span of words, four words per mix round. The exhaustive
// checker hashes whole serialized machine states (thousands of words) per
// interned state and per open-addressing probe; the byte-at-a-time FNV
// Hasher above would dominate that path. Digests are never persisted, so
// this function only needs to be deterministic within one process.
inline std::uint64_t HashWords(const std::uint16_t* words, std::size_t count) {
  std::uint64_t h = Mix64(count + 0x9E3779B97F4A7C15ULL);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::uint64_t lane = static_cast<std::uint64_t>(words[i]) |
                               (static_cast<std::uint64_t>(words[i + 1]) << 16) |
                               (static_cast<std::uint64_t>(words[i + 2]) << 32) |
                               (static_cast<std::uint64_t>(words[i + 3]) << 48);
    h = Mix64(h ^ lane) + 0x9E3779B97F4A7C15ULL;
  }
  std::uint64_t tail = 0;
  for (int shift = 0; i < count; ++i, shift += 16) {
    tail |= static_cast<std::uint64_t>(words[i]) << shift;
  }
  return Mix64(h ^ tail);
}

}  // namespace sep

#endif  // SRC_BASE_HASH_H_
