// Basic fixed-width type aliases used throughout the separation-kernel
// reproduction. The simulated SM-11 machine is a 16-bit word machine; all
// machine-visible quantities use these aliases so the intent (machine word
// vs. host integer) is explicit at every use site.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace sep {

// One SM-11 machine word (16 bits, like the PDP-11/34 the SUE ran on).
using Word = std::uint16_t;

// A physical word address. The SM-11 supports up to 2^18 words of physical
// memory (the PDP-11/34 with extended addressing had an 18-bit physical
// address space), so a 32-bit host integer is used.
using PhysAddr = std::uint32_t;

// A virtual (per-mode, per-regime) word address: 16 bits on the wire but kept
// in a 32-bit host integer so that arithmetic cannot silently wrap.
using VirtAddr = std::uint32_t;

// Simulated time, measured in machine steps. One step is one executed
// instruction or one device activity slot.
using Tick = std::uint64_t;

// Identity of a regime (the paper's "colour"). Regime 0 is reserved for the
// kernel itself in diagnostics; user regimes are numbered from 1 in
// configuration but stored zero-based internally.
using RegimeId = std::uint8_t;

inline constexpr RegimeId kNoRegime = 0xFF;

}  // namespace sep

#endif  // SRC_BASE_TYPES_H_
