// A small result type for fallible operations.
//
// The simulator and kernel never throw across module boundaries; fallible
// APIs return Result<T> (or Result<> for void results). This mirrors the
// zx::result / fit::result idiom used in OS codebases: the error arm carries
// a short diagnostic string because the consumers of these errors are tests,
// benches and example programs rather than recovery logic.
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sep {

struct Error {
  std::string message;
};

inline Error Err(std::string message) { return Error{std::move(message)}; }

template <typename T = void>
class Result;

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return Err("bad address");
  //   return some_word;
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const std::string& error() const { return std::get<Error>(storage_).message; }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::string& error() const { return error_->message; }

 private:
  std::optional<Error> error_;
};

inline Result<> Ok() { return Result<>(); }

}  // namespace sep

#endif  // SRC_BASE_RESULT_H_
