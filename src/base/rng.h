// Deterministic pseudo-random number generation.
//
// Every randomized activity in the repository — checker trace sampling,
// workload generation, device jitter — draws from an explicitly seeded Rng so
// that all experiments are reproducible bit-for-bit. The generator is
// xoshiro256** seeded via splitmix64, both public-domain algorithms,
// implemented here so the repository has no dependency on host library
// distribution details (std::mt19937 streams differ in subtle ways across
// standard libraries when used through distributions).
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>
#include <vector>

namespace sep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling so the
  // distribution is exactly uniform.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with probability numer/denom. Requires denom > 0.
  bool NextChance(std::uint64_t numer, std::uint64_t denom);

  // Uniform double in [0, 1).
  double NextDouble();

  // Derive an independent child generator. Used to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  Rng Fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace sep

#endif  // SRC_BASE_RNG_H_
