#include "src/base/thread_pool.h"

#include "src/base/logging.h"

namespace sep {

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

thread_local int ThreadPool::worker_index_ = 0;

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = HardwareThreads();
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::ParallelForPooled(std::size_t n, const std::function<void(std::size_t)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SEP_CHECK(body_ == nullptr);  // not reentrant
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();

  // The caller participates in the job.
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    body(i);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  body_ = nullptr;
  n_ = 0;
}

void ThreadPool::WorkerMain(int index) {
  worker_index_ = index;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
      body = body_;
      n = n_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        break;
      }
      (*body)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace sep
