// The formal model of the paper's Appendix, as an executable interface.
//
// The Appendix models a shared system as states S with operations
// OPS ⊆ S → S, interacting with its environment through inputs I and
// outputs O, with functions
//
//   OUTPUT : S → O          what the system emits
//   INPUT  : S × I → S      effect of consuming an input
//   NEXTOP : S → OPS        operation selection
//   COLOUR : S → C          which user the next operation serves
//   EXTRACT: C × (I ∪ O)    per-colour projection of inputs/outputs
//
// and asks for per-colour abstraction functions Φ^c : S → S^c and
// ABOP^c : OPS → OPS^c satisfying six conditions (see
// src/core/separability.h, which checks them).
//
// This header renders that model as a C++ interface. Implementations:
//   * KernelizedSystem (src/core) — the machine + separation kernel;
//   * small hand-built systems in tests, including deliberately insecure
//     ones, which validate the checker itself.
//
// Mapping notes:
//   * An "operation" is one CPU phase (instruction, interrupt delivery or
//     deferred kernel work). COLOUR(s) is derivable from the state: the
//     owner of the interrupting device, else the current regime.
//   * I/O device activity is modelled as "units": each unit belongs to one
//     colour and stepping it is one quantum of device activity (conditions
//     3)-5) of the Appendix constrain it).
//   * INPUT/OUTPUT are per-unit word streams; EXTRACT(c, ·) is the
//     restriction to units of colour c.
#ifndef SRC_MODEL_SHARED_SYSTEM_H_
#define SRC_MODEL_SHARED_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace sep {

inline constexpr int kColourNone = -1;

// Φ^c(s): a colour's private abstract machine state, as an opaque value.
// Equality of AbstractState values is equality of abstract states; the
// encoding must therefore be location-independent (e.g. "R3 = 7" regardless
// of whether the value sits in the CPU or a kernel save area).
struct AbstractState {
  std::vector<Word> words;

  std::uint64_t Hash() const {
    Hasher h;
    h.MixRange(words);
    return h.digest();
  }
  bool operator==(const AbstractState& other) const = default;
};

// NEXTOP(s) as an identity: enough structure to decide whether two states
// select the same operation.
struct OperationId {
  enum class Kind : std::uint8_t { kIdle, kInstruction, kInterrupt, kKernelWork } kind =
      Kind::kIdle;
  std::vector<Word> detail;  // instruction words / device slot / work tag

  bool operator==(const OperationId& other) const = default;
  std::string ToString() const;
};

class SharedSystem {
 public:
  virtual ~SharedSystem() = default;

  virtual std::unique_ptr<SharedSystem> Clone() const = 0;

  virtual int ColourCount() const = 0;
  virtual std::string ColourName(int colour) const = 0;

  // COLOUR(s) for the operation ExecuteOperation() would perform now.
  virtual int Colour() const = 0;

  // NEXTOP(s).
  virtual OperationId NextOperation() const = 0;

  // Executes one operation (one CPU phase).
  virtual void ExecuteOperation() = 0;

  // Φ^c(s).
  virtual AbstractState Abstract(int colour) const = 0;

  // --- I/O device activity units ---

  virtual int UnitCount() const = 0;
  virtual int UnitColour(int unit) const = 0;
  virtual std::string UnitName(int unit) const = 0;

  // One quantum of activity of the given unit.
  virtual void StepUnit(int unit) = 0;

  // INPUT restricted to one unit (EXTRACT(c, i) = inputs to c's units).
  virtual void InjectInput(int unit, Word value) = 0;

  // OUTPUT of one unit since the last drain.
  virtual std::vector<Word> DrainOutput(int unit) = 0;

  // --- checker support ---

  // Randomizes every part of the state that is NOT in colour c's abstract
  // view, within representation invariants, without changing COLOUR(s).
  // This realizes the checker's "∀ s' with Φ^c(s') = Φ^c(s)" quantifier.
  virtual void PerturbOthers(int colour, Rng& rng) = 0;

  // True once the system can make no further progress (used to bound trace
  // exploration).
  virtual bool Finished() const { return false; }

  // Canonical serialization of the COMPLETE concrete state (everything
  // Clone() copies). Two systems with equal FullState() must behave
  // identically forever. Optional: only the exhaustive checker needs it;
  // systems that do not support it return nullopt.
  virtual std::optional<std::vector<Word>> FullState() const { return std::nullopt; }

  // FullState() appended to `out` without the intermediate vector where the
  // implementation can avoid it. Only called when FullState() is supported.
  virtual void AppendFullState(std::vector<Word>& out) const {
    std::optional<std::vector<Word>> full = FullState();
    out.insert(out.end(), full->begin(), full->end());
  }

  // Inverse of FullState(): overwrites this system's complete concrete
  // state from a serialization produced by FullState() on an identically
  // CONFIGURED system (same build parameters; the dynamic state may be any
  // reachable one). Returns false if the system does not support
  // restoration; the state is unspecified after a failed restore. The
  // exhaustive checker uses this to reconstruct live systems on demand from
  // its compact state store instead of keeping every explored state
  // resident as a clone.
  virtual bool RestoreFullState(std::span<const Word> state) {
    (void)state;
    return false;
  }

  // Φ^colour(s) appended to `out` as raw words, without the AbstractState
  // wrapper allocation. The checker calls this once per state per colour
  // when grouping Φ-equal states.
  virtual void AppendAbstract(int colour, std::vector<Word>& out) const {
    const AbstractState a = Abstract(colour);
    out.insert(out.end(), a.words.begin(), a.words.end());
  }
};

}  // namespace sep

#endif  // SRC_MODEL_SHARED_SYSTEM_H_
