#include "src/model/shared_system.h"

#include "src/base/strings.h"

namespace sep {

std::string OperationId::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kIdle:
      out = "idle";
      break;
    case Kind::kInstruction:
      out = "insn";
      break;
    case Kind::kInterrupt:
      out = "irq";
      break;
    case Kind::kKernelWork:
      out = "kwork";
      break;
  }
  for (Word w : detail) {
    out += Format(" %04X", w);
  }
  return out;
}

}  // namespace sep
