// Small hand-built SharedSystem implementations with known security
// status, shared by tests and benches. They serve two purposes:
//   * validating the checkers themselves (a verifier that cannot refute a
//     known-leaky system proves nothing by passing a kernel);
//   * exercising the model interface independent of the machine stack.
#ifndef SRC_MODEL_TOY_SYSTEMS_H_
#define SRC_MODEL_TOY_SYSTEMS_H_

#include <memory>
#include <string>

#include "src/model/shared_system.h"

namespace sep {

// Two users with 2-bit private counters and 2-bit I/O cells, alternating
// scheduler, fully finite state space (a few thousand reachable states).
// `leak` couples the counters through the operation.
class TinyTwoUserSystem : public SharedSystem {
 public:
  explicit TinyTwoUserSystem(bool leak) : leak_(leak) {}

  std::unique_ptr<SharedSystem> Clone() const override {
    return std::make_unique<TinyTwoUserSystem>(*this);
  }

  int ColourCount() const override { return 2; }
  std::string ColourName(int colour) const override { return colour == 0 ? "red" : "black"; }
  int Colour() const override { return turn_; }

  OperationId NextOperation() const override {
    return OperationId{OperationId::Kind::kInstruction,
                       {static_cast<Word>(counter_[turn_] & 1)}};
  }

  void ExecuteOperation() override {
    const int c = turn_;
    counter_[c] = static_cast<Word>((counter_[c] + 1) & 0x3);
    if (leak_ && counter_[1 - c] != 0) {
      counter_[c] = static_cast<Word>((counter_[c] + counter_[1 - c]) & 0x3);
    }
    turn_ = 1 - turn_;
  }

  AbstractState Abstract(int colour) const override {
    return AbstractState{{counter_[colour], cell_[colour], inbox_[colour]}};
  }

  int UnitCount() const override { return 2; }
  int UnitColour(int unit) const override { return unit; }
  std::string UnitName(int unit) const override { return "cell" + std::to_string(unit); }

  void StepUnit(int unit) override {
    if (inbox_[unit] != 0) {
      out_[unit] = cell_[unit];
      has_out_[unit] = true;
      cell_[unit] = static_cast<Word>(inbox_[unit] & 0x3);
      inbox_[unit] = 0;
    }
  }

  void InjectInput(int unit, Word value) override {
    inbox_[unit] = static_cast<Word>(value & 0x3);
  }

  std::vector<Word> DrainOutput(int unit) override {
    if (!has_out_[unit]) {
      return {};
    }
    has_out_[unit] = false;
    return {out_[unit]};
  }

  void PerturbOthers(int colour, Rng& rng) override {
    const int other = 1 - colour;
    counter_[other] = static_cast<Word>(rng.Next() & 0x3);
    cell_[other] = static_cast<Word>(rng.Next() & 0x3);
    inbox_[other] = static_cast<Word>(rng.Next() & 0x3);
    has_out_[other] = false;
  }

  std::optional<std::vector<Word>> FullState() const override {
    return std::vector<Word>{static_cast<Word>(turn_),
                             counter_[0],
                             counter_[1],
                             cell_[0],
                             cell_[1],
                             inbox_[0],
                             inbox_[1],
                             out_[0],
                             out_[1],
                             static_cast<Word>(has_out_[0]),
                             static_cast<Word>(has_out_[1])};
  }

  void AppendFullState(std::vector<Word>& out) const override {
    const Word words[kFullStateWords] = {static_cast<Word>(turn_),
                                         counter_[0],
                                         counter_[1],
                                         cell_[0],
                                         cell_[1],
                                         inbox_[0],
                                         inbox_[1],
                                         out_[0],
                                         out_[1],
                                         static_cast<Word>(has_out_[0]),
                                         static_cast<Word>(has_out_[1])};
    out.insert(out.end(), words, words + kFullStateWords);
  }

  bool RestoreFullState(std::span<const Word> state) override {
    if (state.size() != kFullStateWords) {
      return false;
    }
    turn_ = static_cast<int>(state[0]);
    counter_[0] = state[1];
    counter_[1] = state[2];
    cell_[0] = state[3];
    cell_[1] = state[4];
    inbox_[0] = state[5];
    inbox_[1] = state[6];
    out_[0] = state[7];
    out_[1] = state[8];
    has_out_[0] = state[9] != 0;
    has_out_[1] = state[10] != 0;
    return true;
  }

  void AppendAbstract(int colour, std::vector<Word>& out) const override {
    out.insert(out.end(), {counter_[colour], cell_[colour], inbox_[colour]});
  }

 private:
  static constexpr std::size_t kFullStateWords = 11;

  bool leak_;
  int turn_ = 0;
  Word counter_[2] = {0, 0};
  Word cell_[2] = {0, 0};
  Word inbox_[2] = {0, 0};
  Word out_[2] = {0, 0};
  bool has_out_[2] = {false, false};
};

}  // namespace sep

#endif  // SRC_MODEL_TOY_SYSTEMS_H_
