// The ACCAT-style Guard (paper Section 1, experiment E8).
//
//   "Messages from the LOW system to the HIGH one are allowed through the
//    Guard without hindrance, but messages from HIGH to LOW must be
//    displayed to a human 'Security Watch Officer' who has to decide
//    whether they may be declassified."
//
// Built here the way the paper says it SHOULD be built: as a self-contained
// component enforcing different rules per direction, rather than a
// multilevel kernel plus trusted processes fighting the *-property.
//
// The Security Watch Officer — human and unavailable to a simulation — is
// substituted by a scripted ReviewPolicy (see DESIGN.md §6): a rule set
// over the message text producing RELEASE / DENY / REDACT(text) verdicts,
// which preserves exactly what matters to the security argument: every
// HIGH->LOW transfer passes through a single decision point, and nothing
// reaches LOW except a verdict's output.
//
// Ports: in0 = from LOW, in1 = from HIGH; out0 = to LOW, out1 = to HIGH.
// Frames: kGuardMsg : [message chars...] both directions.
#ifndef SRC_COMPONENTS_GUARD_H_
#define SRC_COMPONENTS_GUARD_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/components/wire.h"
#include "src/distributed/network.h"

namespace sep {

inline constexpr Word kGuardMsg = 0x51;

enum class ReviewOutcome : std::uint8_t { kRelease, kDeny, kRedact };

struct ReviewVerdict {
  ReviewOutcome outcome = ReviewOutcome::kDeny;
  std::string redacted_text;  // used when outcome == kRedact
};

using ReviewPolicy = std::function<ReviewVerdict(const std::string& message)>;

// The default scripted watch officer: releases messages explicitly marked
// "UNCLAS:"; redacts digit runs from messages marked "REVIEW:" (substituting
// '#'); denies everything else.
ReviewVerdict DefaultWatchOfficer(const std::string& message);

struct GuardStats {
  std::uint64_t low_to_high = 0;
  std::uint64_t high_to_low_released = 0;
  std::uint64_t high_to_low_redacted = 0;
  std::uint64_t high_to_low_denied = 0;
};

class Guard : public Process {
 public:
  // review_delay: steps each HIGH->LOW message spends "on the officer's
  // screen" before the verdict applies.
  Guard(ReviewPolicy policy, Tick review_delay = 5);

  std::string name() const override { return "guard"; }
  void Step(NodeContext& ctx) override;

  const GuardStats& stats() const { return stats_; }
  const std::vector<std::string>& audit() const { return audit_; }
  std::size_t review_backlog() const { return review_queue_.size(); }

 private:
  ReviewPolicy policy_;
  Tick review_delay_;
  FrameReader from_low_;
  FrameReader from_high_;
  FrameWriter to_low_;
  FrameWriter to_high_;
  struct PendingReview {
    std::string text;
    Tick ready_at;
  };
  std::deque<PendingReview> review_queue_;
  GuardStats stats_;
  std::vector<std::string> audit_;
};

// Message source/sink endpoints for guard scenarios.
class MessageSource : public Process {
 public:
  MessageSource(std::string name, std::vector<std::string> messages)
      : name_(std::move(name)), messages_(std::move(messages)) {}
  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override;
  bool Finished() const override { return next_ >= messages_.size() && writer_.idle(); }

 private:
  std::string name_;
  std::vector<std::string> messages_;
  std::size_t next_ = 0;
  FrameWriter writer_;
};

class MessageSink : public Process {
 public:
  explicit MessageSink(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override;

  const std::vector<std::string>& received() const { return received_; }

 private:
  std::string name_;
  FrameReader reader_;
  std::vector<std::string> received_;
};

}  // namespace sep

#endif  // SRC_COMPONENTS_GUARD_H_
