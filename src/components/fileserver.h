// The multilevel secure file-server — the single trusted component of the
// paper's Section 2 idealized system:
//
//   "each user is given his own private, physically isolated, single-user
//    machine and a dedicated communication line to a common, shared
//    file-server. The only component of this system that needs to be
//    trusted is the file-server."
//
// Identity is by LINE, not by credential: in-port i and out-port i form the
// dedicated line of one configured user at one security level, exactly as
// a dedicated physical wire authenticates its endpoint. Every operation
// passes the Bell-LaPadula monitor; the audit trail is exposed for the E12
// experiment.
//
// Request frames (client -> server):
//   kFsCreate : [level_code, name chars...]        create empty file
//   kFsWrite  : [name_len, name..., data words...] append (blind write up ok)
//   kFsRead   : [name_len, name..., offset, count] read
//   kFsDelete : [name chars...]                    delete (same level only)
//   kFsList   : []                                 list readable files
// Reply frames (server -> client):
//   kFsOk     : [request_type]
//   kFsErr    : [request_type, error_code]
//   kFsData   : [request_type, payload...]
#ifndef SRC_COMPONENTS_FILESERVER_H_
#define SRC_COMPONENTS_FILESERVER_H_

#include <map>
#include <string>
#include <vector>

#include "src/components/wire.h"
#include "src/distributed/network.h"
#include "src/security/blp.h"

namespace sep {

inline constexpr Word kFsCreate = 0x11;
inline constexpr Word kFsWrite = 0x12;
inline constexpr Word kFsRead = 0x13;
inline constexpr Word kFsDelete = 0x14;
inline constexpr Word kFsList = 0x15;
inline constexpr Word kFsOk = 0x21;
inline constexpr Word kFsErr = 0x22;
inline constexpr Word kFsData = 0x23;

// Error codes carried by kFsErr.
inline constexpr Word kFsEDenied = 1;
inline constexpr Word kFsENotFound = 2;
inline constexpr Word kFsEExists = 3;
inline constexpr Word kFsEBadRequest = 4;

struct FileServerUser {
  std::string name;
  SecurityLevel level;
};

class FileServer : public Process {
 public:
  // users[i] is bound to line i (in-port i, out-port i).
  explicit FileServer(std::vector<FileServerUser> users);

  std::string name() const override { return "file-server"; }
  void Step(NodeContext& ctx) override;

  // --- inspection for tests/benches ---
  const BlpMonitor& monitor() const { return monitor_; }
  std::size_t file_count() const { return files_.size(); }
  bool HasFile(const std::string& file) const { return files_.count(file) != 0; }
  std::vector<Word> FileContents(const std::string& file) const;
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct StoredFile {
    std::vector<Word> data;
  };

  Frame Handle(int line, const Frame& request);
  Frame ErrorReply(Word request_type, Word code) {
    return Frame{kFsErr, {request_type, code}};
  }

  std::vector<FileServerUser> users_;
  BlpMonitor monitor_;
  std::map<std::string, StoredFile> files_;
  std::vector<FrameReader> readers_;
  std::vector<FrameWriter> writers_;
  std::uint64_t requests_served_ = 0;
};

// A scriptable file-server client for tests and workloads: submits the
// script one request at a time, waiting for each reply before sending the
// next, and records every reply. `start_delay` holds the first request back
// (used to order scenarios across independent clients).
class FileClient : public Process {
 public:
  FileClient(std::string name, std::vector<Frame> script, Tick start_delay = 0)
      : name_(std::move(name)), script_(std::move(script)), start_delay_(start_delay) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override;
  bool Finished() const override;

  const std::vector<Frame>& replies() const { return replies_; }

 private:
  std::string name_;
  std::vector<Frame> script_;
  Tick start_delay_;
  std::size_t next_ = 0;
  std::vector<Frame> replies_;
  FrameReader reader_;
  FrameWriter writer_;
};

// Convenience constructors for request frames.
Frame FsCreate(const SecurityLevel& level, const std::string& file);
Frame FsWrite(const std::string& file, const std::vector<Word>& data);
Frame FsRead(const std::string& file, Word offset, Word count);
Frame FsDelete(const std::string& file);
Frame FsList();

}  // namespace sep

#endif  // SRC_COMPONENTS_FILESERVER_H_
