// The authentication component of the paper's Section 2:
//
//   "There must ... be some additional mechanism to authenticate the
//    identities of users as they log in to the single-user machines and to
//    inform the file and printer-servers of the security classifications
//    associated with each user."
//
// The AuthServer holds the user registry (name, salted password digest,
// clearance), serves LOGIN requests from terminal lines and VALIDATE
// requests from sibling servers over their own dedicated lines. Tokens are
// single-session capabilities: (user, session level) with an expiry step.
// Repeated failures lock a line out for a configurable period.
//
// Frames:
//   terminal -> auth   kAuthLogin    : [level_code, name_len, name...,
//                                       password...]
//   auth -> terminal   kAuthGranted  : [token, level_code]
//                      kAuthDenied   : [reason]
//   server -> auth     kAuthValidate : [token]
//   auth -> server     kAuthInfo     : [valid, level_code, name...]
#ifndef SRC_COMPONENTS_AUTH_H_
#define SRC_COMPONENTS_AUTH_H_

#include <map>
#include <string>
#include <vector>

#include "src/base/hash.h"
#include "src/components/wire.h"
#include "src/distributed/network.h"
#include "src/security/level.h"

namespace sep {

inline constexpr Word kAuthLogin = 0x41;
inline constexpr Word kAuthGranted = 0x42;
inline constexpr Word kAuthDenied = 0x43;
inline constexpr Word kAuthValidate = 0x44;
inline constexpr Word kAuthInfo = 0x45;

inline constexpr Word kAuthReasonBadCredentials = 1;
inline constexpr Word kAuthReasonLevelExceedsClearance = 2;
inline constexpr Word kAuthReasonLockedOut = 3;

struct AuthUser {
  std::string name;
  std::string password;
  SecurityLevel clearance;
};

struct AuthOptions {
  int max_failures = 3;
  Tick lockout_steps = 50;
  int terminal_lines = 1;   // ports [0, terminal_lines) are terminals
  int validator_lines = 0;  // ports [terminal_lines, +validator_lines) are servers
};

class AuthServer : public Process {
 public:
  AuthServer(std::vector<AuthUser> users, AuthOptions options);

  std::string name() const override { return "auth-server"; }
  void Step(NodeContext& ctx) override;

  std::size_t sessions_active() const { return sessions_.size(); }
  std::uint64_t logins_granted() const { return granted_; }
  std::uint64_t logins_denied() const { return denied_; }

  // Direct validation for in-process composition (the kernelized examples
  // where the auth data is consulted without a network hop).
  struct SessionInfo {
    bool valid = false;
    std::string user;
    SecurityLevel level;
  };
  SessionInfo Validate(Word token) const;

 private:
  static std::uint64_t Digest(const std::string& user, const std::string& password) {
    return HashBytes(user + "\x01" + password + "\x02sep-auth-salt");
  }

  Frame HandleLogin(int line, const Frame& request, Tick now);
  Frame HandleValidate(const Frame& request);

  std::vector<AuthUser> users_;
  AuthOptions options_;
  std::map<std::string, std::uint64_t> digests_;
  struct Session {
    std::string user;
    SecurityLevel level;
  };
  std::map<Word, Session> sessions_;
  struct LineState {
    int failures = 0;
    Tick locked_until = 0;
  };
  std::vector<LineState> line_state_;
  std::vector<FrameReader> readers_;
  std::vector<FrameWriter> writers_;
  Word next_token_ = 0x100;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

// Request constructors.
Frame AuthLoginRequest(const SecurityLevel& level, const std::string& user,
                       const std::string& password);
Frame AuthValidateRequest(Word token);

}  // namespace sep

#endif  // SRC_COMPONENTS_AUTH_H_
