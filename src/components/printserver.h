// The self-contained printer-server of the paper's Section 2.
//
// Each user submits jobs over a dedicated line at a fixed level (like the
// file-server's lines). The server spools each job AT THE SUBMITTER'S
// LEVEL, prints it with a banner page carrying the correct classification,
// and deletes the spool entry afterwards — legally, because the server
// processes each job at the job's own level. This is the distributed
// resolution of the Section 1 spooler dilemma: no trusted-process
// exemption anywhere (asserted by the tests via the audit trail).
//
// Security obligations implemented (the paper's list):
//   * the banner carries the job's true classification;
//   * jobs are serialized — no interleaving of one job inside another;
//   * no feedback of one user's data to another (replies carry only the
//     submitter's own job ids);
//   * spool files are deleted after printing, without any *-property
//     violation.
//
// Frames:
//   client -> server  kPrSubmit : [job chars...]
//   server -> client  kPrDone   : [job_id]
#ifndef SRC_COMPONENTS_PRINTSERVER_H_
#define SRC_COMPONENTS_PRINTSERVER_H_

#include <deque>
#include <string>
#include <vector>

#include "src/components/wire.h"
#include "src/distributed/network.h"
#include "src/security/blp.h"

namespace sep {

inline constexpr Word kPrSubmit = 0x31;
inline constexpr Word kPrDone = 0x32;

struct PrintUser {
  std::string name;
  SecurityLevel level;
};

class PrintServer : public Process {
 public:
  // users[i] bound to line i; print_rate = characters per step.
  PrintServer(std::vector<PrintUser> users, int print_rate = 4);

  std::string name() const override { return "printer-server"; }
  void Step(NodeContext& ctx) override;

  // Everything that has reached the (simulated) paper so far.
  const std::string& printed() const { return printed_; }
  // BLP decisions the server made about its own spool handling.
  const BlpMonitor& monitor() const { return monitor_; }
  std::size_t jobs_completed() const { return jobs_completed_; }
  std::size_t spool_backlog() const { return queue_.size(); }

 private:
  struct Job {
    int line;
    std::string spool_name;
    std::string body;
  };

  void StartNextJob();

  std::vector<PrintUser> users_;
  int print_rate_;
  BlpMonitor monitor_;
  std::vector<FrameReader> readers_;
  std::vector<FrameWriter> writers_;
  std::deque<Job> queue_;
  bool printing_ = false;
  Job current_;
  std::string render_;          // banner + body of the current job
  std::size_t render_pos_ = 0;
  std::string printed_;
  std::size_t jobs_completed_ = 0;
  int next_job_id_ = 1;
};

// Submits a fixed set of print jobs and waits for completions.
class PrintClient : public Process {
 public:
  PrintClient(std::string name, std::vector<std::string> jobs)
      : name_(std::move(name)), jobs_(std::move(jobs)) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override;
  bool Finished() const override { return done_ >= jobs_.size(); }

  std::size_t completions() const { return done_; }

 private:
  std::string name_;
  std::vector<std::string> jobs_;
  std::size_t submitted_ = 0;
  std::size_t done_ = 0;
  FrameReader reader_;
  FrameWriter writer_;
};

}  // namespace sep

#endif  // SRC_COMPONENTS_PRINTSERVER_H_
