#include "src/components/printserver.h"

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace sep {

PrintServer::PrintServer(std::vector<PrintUser> users, int print_rate)
    : users_(std::move(users)), print_rate_(print_rate) {
  readers_.resize(users_.size());
  writers_.resize(users_.size());
  // The server acts as one subject PER LEVEL it handles: "printer@<user>"
  // running at the submitting user's level. That is the whole point — it
  // never needs a subject that observes high data and alters low data.
  for (const PrintUser& user : users_) {
    SEP_CHECK(monitor_.AddSubject({"printer@" + user.name, user.level, user.level, false}).ok());
  }
}

void PrintServer::Step(NodeContext& ctx) {
  // Accept new submissions (at most one per line per quantum).
  for (std::size_t line = 0; line < users_.size(); ++line) {
    readers_[line].Poll(ctx, static_cast<int>(line));
    if (std::optional<Frame> frame = readers_[line].Next()) {
      if (frame->type == kPrSubmit) {
        const PrintUser& user = users_[line];
        Job job;
        job.line = static_cast<int>(line);
        job.spool_name = Format("spool/%s-%d", user.name.c_str(), next_job_id_++);
        job.body = WordsToString(frame->fields);
        // The spool object is classified at the submitter's level.
        SEP_CHECK(monitor_.AddObject({job.spool_name, user.level}).ok());
        // Spooling = writing the job into the spool file (same level).
        SEP_CHECK(
            monitor_.Require("printer@" + user.name, job.spool_name, AccessMode::kWrite).ok());
        queue_.push_back(std::move(job));
      }
    }
  }

  if (!printing_ && !queue_.empty()) {
    StartNextJob();
  }

  // Print `print_rate_` characters of the current job per quantum; jobs are
  // strictly serialized, so no interleaving is possible by construction.
  if (printing_) {
    for (int i = 0; i < print_rate_ && render_pos_ < render_.size(); ++i) {
      printed_.push_back(render_[render_pos_++]);
    }
    if (render_pos_ >= render_.size()) {
      // Job finished: delete the spool file. The per-level subject deletes
      // an object AT ITS OWN LEVEL — BLP-legal, no exemption involved.
      const PrintUser& user = users_[static_cast<std::size_t>(current_.line)];
      SEP_CHECK(
          monitor_.Require("printer@" + user.name, current_.spool_name, AccessMode::kDelete)
              .ok());
      SEP_CHECK(monitor_.RemoveObject(current_.spool_name).ok());
      writers_[static_cast<std::size_t>(current_.line)].Queue(
          Frame{kPrDone, {static_cast<Word>(jobs_completed_ + 1)}});
      ++jobs_completed_;
      printing_ = false;
    }
  }

  for (std::size_t line = 0; line < users_.size(); ++line) {
    writers_[line].Flush(ctx, static_cast<int>(line));
  }
}

void PrintServer::StartNextJob() {
  current_ = std::move(queue_.front());
  queue_.pop_front();
  const PrintUser& user = users_[static_cast<std::size_t>(current_.line)];
  // Reading the spool back for printing: same-level read.
  SEP_CHECK(monitor_.Require("printer@" + user.name, current_.spool_name, AccessMode::kRead).ok());
  render_ = Format("=== %s === user:%s ===\n", user.level.ToString().c_str(), user.name.c_str()) +
            current_.body + "\n=== END OF JOB ===\n";
  render_pos_ = 0;
  printing_ = true;
}

void PrintClient::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (frame->type == kPrDone) {
      ++done_;
    }
  }
  if (submitted_ < jobs_.size() && writer_.idle()) {
    Frame f{kPrSubmit, StringToWords(jobs_[submitted_++])};
    writer_.Queue(f);
  }
  writer_.Flush(ctx, 0);
}

}  // namespace sep
