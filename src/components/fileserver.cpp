#include "src/components/fileserver.h"

#include "src/base/logging.h"

namespace sep {

FileServer::FileServer(std::vector<FileServerUser> users) : users_(std::move(users)) {
  readers_.resize(users_.size());
  writers_.resize(users_.size());
  for (const FileServerUser& user : users_) {
    // Users arrive pre-authenticated by their dedicated line; the monitor
    // subject is created at the line's level.
    SEP_CHECK(monitor_.AddSubject({user.name, user.level, user.level, false}).ok());
  }
}

std::vector<Word> FileServer::FileContents(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? std::vector<Word>{} : it->second.data;
}

void FileServer::Step(NodeContext& ctx) {
  for (std::size_t line = 0; line < users_.size(); ++line) {
    const int port = static_cast<int>(line);
    readers_[line].Poll(ctx, port);
    // Bounded work per quantum: at most one request per line per step.
    if (std::optional<Frame> request = readers_[line].Next()) {
      Frame reply = Handle(static_cast<int>(line), *request);
      ++requests_served_;
      writers_[line].Queue(reply);
    }
    writers_[line].Flush(ctx, port);
  }
}

Frame FileServer::Handle(int line, const Frame& request) {
  const FileServerUser& user = users_[static_cast<std::size_t>(line)];
  switch (request.type) {
    case kFsCreate: {
      if (request.fields.empty()) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      const SecurityLevel level = DecodeLevel(request.fields[0]);
      const std::string file = WordsToString(request.fields, 1);
      if (file.empty()) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      if (files_.count(file) != 0) {
        return ErrorReply(request.type, kFsEExists);
      }
      // Creating a file makes its name visible at `level`: the requested
      // level must dominate the creator's (a blind "create up" is the
      // append rule; creating DOWN would move the fact of creation down).
      if (!level.Dominates(user.level)) {
        return ErrorReply(request.type, kFsEDenied);
      }
      SEP_CHECK(monitor_.AddObject({file, level}).ok());
      files_.emplace(file, StoredFile{});
      return Frame{kFsOk, {request.type}};
    }
    case kFsWrite: {
      if (request.fields.empty()) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      const Word name_len = request.fields[0];
      if (request.fields.size() < static_cast<std::size_t>(name_len) + 1) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      const std::string file = WordsToString(request.fields, 1, name_len);
      if (files_.count(file) == 0) {
        return ErrorReply(request.type, kFsENotFound);
      }
      if (!monitor_.Check(user.name, file, AccessMode::kAppend).granted) {
        return ErrorReply(request.type, kFsEDenied);
      }
      StoredFile& stored = files_[file];
      stored.data.insert(stored.data.end(), request.fields.begin() + 1 + name_len,
                         request.fields.end());
      return Frame{kFsOk, {request.type}};
    }
    case kFsRead: {
      if (request.fields.size() < 3) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      const Word name_len = request.fields[0];
      if (request.fields.size() < static_cast<std::size_t>(name_len) + 3) {
        return ErrorReply(request.type, kFsEBadRequest);
      }
      const std::string file = WordsToString(request.fields, 1, name_len);
      const Word offset = request.fields[1 + name_len];
      const Word count = request.fields[2 + name_len];
      if (files_.count(file) == 0) {
        // Existence itself is information: users who cannot read the file
        // get the same answer whether or not it exists.
        return ErrorReply(request.type, kFsENotFound);
      }
      if (!monitor_.Check(user.name, file, AccessMode::kRead).granted) {
        return ErrorReply(request.type, kFsENotFound);
      }
      const StoredFile& stored = files_[file];
      Frame reply{kFsData, {request.type}};
      for (Word i = 0; i < count; ++i) {
        const std::size_t index = static_cast<std::size_t>(offset) + i;
        if (index >= stored.data.size()) {
          break;
        }
        reply.fields.push_back(stored.data[index]);
      }
      return reply;
    }
    case kFsDelete: {
      const std::string file = WordsToString(request.fields, 0);
      if (files_.count(file) == 0) {
        return ErrorReply(request.type, kFsENotFound);
      }
      if (!monitor_.Check(user.name, file, AccessMode::kDelete).granted) {
        return ErrorReply(request.type, kFsEDenied);
      }
      files_.erase(file);
      SEP_CHECK(monitor_.RemoveObject(file).ok());
      return Frame{kFsOk, {request.type}};
    }
    case kFsList: {
      Frame reply{kFsData, {request.type}};
      for (const auto& [file, stored] : files_) {
        if (monitor_.Check(user.name, file, AccessMode::kRead).granted) {
          reply.fields.push_back(static_cast<Word>(file.size()));
          for (unsigned char c : file) {
            reply.fields.push_back(c);
          }
        }
      }
      return reply;
    }
    default:
      return ErrorReply(request.type, kFsEBadRequest);
  }
}

// --- FileClient ----------------------------------------------------------------

void FileClient::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> reply = reader_.Next()) {
    replies_.push_back(*reply);
  }
  // Serialize: the next request goes out only after the previous one was
  // answered (and after the configured start delay).
  if (ctx.now() >= start_delay_ && next_ < script_.size() && writer_.idle() &&
      replies_.size() == next_) {
    writer_.Queue(script_[next_++]);
  }
  writer_.Flush(ctx, 0);
}

bool FileClient::Finished() const {
  return next_ >= script_.size() && writer_.idle() && replies_.size() >= script_.size();
}

// --- request constructors --------------------------------------------------------

Frame FsCreate(const SecurityLevel& level, const std::string& file) {
  Frame f{kFsCreate, {EncodeLevel(level)}};
  for (unsigned char c : file) {
    f.fields.push_back(c);
  }
  return f;
}

Frame FsWrite(const std::string& file, const std::vector<Word>& data) {
  Frame f{kFsWrite, {static_cast<Word>(file.size())}};
  for (unsigned char c : file) {
    f.fields.push_back(c);
  }
  f.fields.insert(f.fields.end(), data.begin(), data.end());
  return f;
}

Frame FsRead(const std::string& file, Word offset, Word count) {
  Frame f{kFsRead, {static_cast<Word>(file.size())}};
  for (unsigned char c : file) {
    f.fields.push_back(c);
  }
  f.fields.push_back(offset);
  f.fields.push_back(count);
  return f;
}

Frame FsDelete(const std::string& file) {
  Frame f{kFsDelete, {}};
  for (unsigned char c : file) {
    f.fields.push_back(c);
  }
  return f;
}

Frame FsList() { return Frame{kFsList, {}}; }

}  // namespace sep
