#include "src/components/auth.h"

namespace sep {

AuthServer::AuthServer(std::vector<AuthUser> users, AuthOptions options)
    : users_(std::move(users)), options_(options) {
  const int lines = options_.terminal_lines + options_.validator_lines;
  readers_.resize(static_cast<std::size_t>(lines));
  writers_.resize(static_cast<std::size_t>(lines));
  line_state_.resize(static_cast<std::size_t>(options_.terminal_lines));
  for (const AuthUser& user : users_) {
    // Only the digest is retained; the cleartext password is not stored.
    digests_[user.name] = Digest(user.name, user.password);
  }
}

void AuthServer::Step(NodeContext& ctx) {
  const int lines = options_.terminal_lines + options_.validator_lines;
  for (int line = 0; line < lines; ++line) {
    readers_[static_cast<std::size_t>(line)].Poll(ctx, line);
    if (std::optional<Frame> request = readers_[static_cast<std::size_t>(line)].Next()) {
      Frame reply;
      if (line < options_.terminal_lines && request->type == kAuthLogin) {
        reply = HandleLogin(line, *request, ctx.now());
      } else if (line >= options_.terminal_lines && request->type == kAuthValidate) {
        reply = HandleValidate(*request);
      } else {
        reply = Frame{kAuthDenied, {kAuthReasonBadCredentials}};
      }
      writers_[static_cast<std::size_t>(line)].Queue(reply);
    }
    writers_[static_cast<std::size_t>(line)].Flush(ctx, line);
  }
}

Frame AuthServer::HandleLogin(int line, const Frame& request, Tick now) {
  LineState& state = line_state_[static_cast<std::size_t>(line)];
  if (now < state.locked_until) {
    ++denied_;
    return Frame{kAuthDenied, {kAuthReasonLockedOut}};
  }
  if (request.fields.size() < 2) {
    ++denied_;
    return Frame{kAuthDenied, {kAuthReasonBadCredentials}};
  }
  const SecurityLevel requested = DecodeLevel(request.fields[0]);
  const Word name_len = request.fields[1];
  if (request.fields.size() < static_cast<std::size_t>(name_len) + 2) {
    ++denied_;
    return Frame{kAuthDenied, {kAuthReasonBadCredentials}};
  }
  const std::string user = WordsToString(request.fields, 2, name_len);
  const std::string password =
      WordsToString(request.fields, 2 + static_cast<std::size_t>(name_len));

  auto digest = digests_.find(user);
  if (digest == digests_.end() || digest->second != Digest(user, password)) {
    ++denied_;
    if (++state.failures >= options_.max_failures) {
      state.locked_until = now + options_.lockout_steps;
      state.failures = 0;
    }
    return Frame{kAuthDenied, {kAuthReasonBadCredentials}};
  }

  const AuthUser* record = nullptr;
  for (const AuthUser& u : users_) {
    if (u.name == user) {
      record = &u;
    }
  }
  if (!record->clearance.Dominates(requested)) {
    ++denied_;
    return Frame{kAuthDenied, {kAuthReasonLevelExceedsClearance}};
  }

  state.failures = 0;
  const Word token = next_token_++;
  sessions_[token] = Session{user, requested};
  ++granted_;
  return Frame{kAuthGranted, {token, EncodeLevel(requested)}};
}

Frame AuthServer::HandleValidate(const Frame& request) {
  if (request.fields.empty()) {
    return Frame{kAuthInfo, {0}};
  }
  SessionInfo info = Validate(request.fields[0]);
  if (!info.valid) {
    return Frame{kAuthInfo, {0}};
  }
  Frame reply{kAuthInfo, {1, EncodeLevel(info.level)}};
  for (unsigned char c : info.user) {
    reply.fields.push_back(c);
  }
  return reply;
}

AuthServer::SessionInfo AuthServer::Validate(Word token) const {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return {};
  }
  return {true, it->second.user, it->second.level};
}

Frame AuthLoginRequest(const SecurityLevel& level, const std::string& user,
                       const std::string& password) {
  Frame f{kAuthLogin, {EncodeLevel(level), static_cast<Word>(user.size())}};
  for (unsigned char c : user) {
    f.fields.push_back(c);
  }
  for (unsigned char c : password) {
    f.fields.push_back(c);
  }
  return f;
}

Frame AuthValidateRequest(Word token) { return Frame{kAuthValidate, {token}}; }

}  // namespace sep
