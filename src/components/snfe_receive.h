// The receive side of the SNFE pair: "end-to-end encryption around the
// network" (paper Section 2) needs a front end on BOTH sides. The receive
// path mirrors the transmit path:
//
//   net === [ BLACK-RX ] ---cipher---> [ CRYPTO ] ---clear---> [ RED-RX ] === host
//               |                                                  ^
//               +------ bypass -----> [ CENSOR ] -----------------+
//
// The black receiver splits each network packet into its header (sent over
// the RECEIVE bypass toward the red side, again mediated by a censor — the
// network side must not be able to push arbitrary data at the host either)
// and its ciphertext payload (through the crypto, which decrypts). The red
// receiver re-assembles host packets.
//
// Because the stream cipher is XOR with a counted keystream, the receive
// crypto box is the same CryptoBox component keyed identically: the paper's
// symmetric crypto pair.
#ifndef SRC_COMPONENTS_SNFE_RECEIVE_H_
#define SRC_COMPONENTS_SNFE_RECEIVE_H_

#include "src/components/snfe.h"
#include "src/distributed/faults.h"
#include "src/distributed/recoverable.h"
#include "src/distributed/reliable.h"

namespace sep {

// Splits incoming kPktNet frames: header -> bypass (port 1, as kPktHdr),
// ciphertext -> crypto (port 0, as kPktPayload so the shared CryptoBox
// transforms it — XOR decryption).
class BlackReceiver : public Process {
 public:
  BlackReceiver() = default;
  std::string name() const override { return "black-rx"; }
  void Step(NodeContext& ctx) override;

 private:
  FrameReader from_network_;
  FrameWriter to_crypto_;
  FrameWriter to_bypass_;
};

// Pairs censored headers (port 0) with decrypted payloads (port 1) back
// into kPktHost frames for the receiving host.
class RedReceiver : public Process {
 public:
  RedReceiver() = default;
  std::string name() const override { return "red-rx"; }
  void Step(NodeContext& ctx) override;

 private:
  FrameReader from_censor_;
  FrameReader from_crypto_;
  FrameWriter to_host_;
  std::deque<Frame> headers_;
  std::deque<Frame> payloads_;
};

// Collects the packets delivered to the receiving host.
class HostSink : public Process {
 public:
  HostSink() = default;
  std::string name() const override { return "host-rx"; }
  void Step(NodeContext& ctx) override;

  const std::vector<Frame>& packets() const { return packets_; }

 private:
  FrameReader reader_;
  std::vector<Frame> packets_;
};

struct SnfePairTopology {
  SnfeTopology transmit;
  int black_rx = -1;
  int crypto_rx = -1;
  int censor_rx = -1;
  int red_rx = -1;
  int host_rx = -1;
};

// Builds a full transmit SNFE, a network hop, and a receive SNFE sharing
// the crypto key: the complete end-to-end encrypted path host -> host.
SnfePairTopology BuildSnfePair(Network& net, CensorStrictness strictness, int packet_count = 16,
                               std::uint64_t key = 0xC0FFEE);

// The SNFE pair with a REAL network in the middle: the black->black-rx hop
// runs through a reliable tunnel (src/distributed/reliable.h) whose data and
// ACK lines carry the given fault schedule. With any fault rate the protocol
// tolerates, the receiving host's packet stream is byte-identical to the
// fault-free run — the chaos acceptance property.
struct SnfeLossyTopology {
  SnfePairTopology pair;
  ReliableTunnel tunnel;
};

SnfeLossyTopology BuildSnfePairReliable(Network& net, CensorStrictness strictness,
                                        const FaultSpec& net_faults, std::uint64_t fault_seed,
                                        int packet_count = 16, std::uint64_t key = 0xC0FFEE,
                                        const ReliableConfig& reliable = {});

// The SNFE pair with a CRASH-SURVIVABLE network in the middle: the
// black->black-rx hop runs through a recoverable tunnel
// (src/distributed/recoverable.h) whose two crashable endpoints may be
// killed with ScheduleCrash / InjectNodeFaults while the data and ACK lines
// carry the given wire-fault schedule. Experiment E18: for any crash
// schedule the endpoints recover from, the receiving host's packet stream
// is byte-identical to the undisturbed run.
struct SnfeRecoverableTopology {
  SnfePairTopology pair;
  RecoverableTunnel tunnel;
};

SnfeRecoverableTopology BuildSnfePairRecoverable(Network& net, CensorStrictness strictness,
                                                 const FaultSpec& net_faults,
                                                 std::uint64_t fault_seed,
                                                 const TunnelRecoveryOptions& recovery = {},
                                                 int packet_count = 16,
                                                 std::uint64_t key = 0xC0FFEE,
                                                 const ReliableConfig& reliable = {});

}  // namespace sep

#endif  // SRC_COMPONENTS_SNFE_RECEIVE_H_
