#include "src/components/snfe_receive.h"

namespace sep {

void BlackReceiver::Step(NodeContext& ctx) {
  from_network_.Poll(ctx, 0);
  if (std::optional<Frame> packet = from_network_.Next()) {
    if (packet->type == kPktNet && packet->fields.size() >= 3) {
      to_bypass_.Queue(Frame{kPktHdr,
                             {packet->fields[0], packet->fields[1], packet->fields[2]}});
      to_crypto_.Queue(Frame{kPktPayload,
                             {packet->fields.begin() + 3, packet->fields.end()}});
    }
  }
  to_crypto_.Flush(ctx, 0);
  to_bypass_.Flush(ctx, 1);
}

void RedReceiver::Step(NodeContext& ctx) {
  from_censor_.Poll(ctx, 0);
  while (std::optional<Frame> frame = from_censor_.Next()) {
    if (frame->type == kPktHdr && frame->fields.size() == 3) {
      headers_.push_back(*frame);
    }
  }
  from_crypto_.Poll(ctx, 1);
  while (std::optional<Frame> frame = from_crypto_.Next()) {
    if (frame->type == kPktCipher) {
      payloads_.push_back(*frame);
    }
  }
  if (!headers_.empty() && !payloads_.empty()) {
    Frame header = std::move(headers_.front());
    headers_.pop_front();
    Frame payload = std::move(payloads_.front());
    payloads_.pop_front();
    Frame host{kPktHost, {header.fields[0], header.fields[1], header.fields[2]}};
    host.fields.insert(host.fields.end(), payload.fields.begin(), payload.fields.end());
    to_host_.Queue(host);
  }
  to_host_.Flush(ctx, 0);
}

void HostSink::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (frame->type == kPktHost) {
      packets_.push_back(*frame);
    }
  }
}

SnfePairTopology BuildSnfePair(Network& net, CensorStrictness strictness, int packet_count,
                               std::uint64_t key) {
  SnfePairTopology topo;

  // Transmit side (like BuildSnfe, but the network line continues onward).
  topo.transmit.host = net.AddNode(std::make_unique<HostSource>(packet_count, /*seed=*/42));
  topo.transmit.red = net.AddNode(std::make_unique<RedHost>());
  topo.transmit.crypto = net.AddNode(std::make_unique<CryptoBox>(key));
  topo.transmit.censor = net.AddNode(std::make_unique<Censor>(strictness));
  topo.transmit.black = net.AddNode(std::make_unique<BlackHost>());

  // Receive side.
  topo.black_rx = net.AddNode(std::make_unique<BlackReceiver>());
  topo.crypto_rx = net.AddNode(std::make_unique<CryptoBox>(key));  // shared key: decrypts
  topo.censor_rx = net.AddNode(std::make_unique<Censor>(strictness));
  topo.red_rx = net.AddNode(std::make_unique<RedReceiver>());
  topo.host_rx = net.AddNode(std::make_unique<HostSink>());
  topo.transmit.network = topo.black_rx;  // "the network" ends at the peer

  // Transmit lines.
  net.Connect(topo.transmit.host, topo.transmit.red, 512, 1, "host-line");
  net.Connect(topo.transmit.red, topo.transmit.crypto, 512, 1, "red-crypto");
  net.Connect(topo.transmit.red, topo.transmit.censor, 512, 1, "bypass-tx");
  net.Connect(topo.transmit.censor, topo.transmit.black, 512, 1, "censor-black");
  net.Connect(topo.transmit.crypto, topo.transmit.black, 512, 1, "crypto-black");
  // The network itself.
  net.Connect(topo.transmit.black, topo.black_rx, 512, 3, "the-network");
  // Receive lines (mirrored).
  net.Connect(topo.black_rx, topo.crypto_rx, 512, 1, "blackrx-crypto");
  net.Connect(topo.black_rx, topo.censor_rx, 512, 1, "bypass-rx");
  net.Connect(topo.censor_rx, topo.red_rx, 512, 1, "censor-redrx");
  net.Connect(topo.crypto_rx, topo.red_rx, 512, 1, "crypto-redrx");
  net.Connect(topo.red_rx, topo.host_rx, 512, 1, "host-line-rx");
  return topo;
}

SnfeLossyTopology BuildSnfePairReliable(Network& net, CensorStrictness strictness,
                                        const FaultSpec& net_faults, std::uint64_t fault_seed,
                                        int packet_count, std::uint64_t key,
                                        const ReliableConfig& reliable) {
  SnfeLossyTopology topo;
  SnfePairTopology& pair = topo.pair;

  pair.transmit.host = net.AddNode(std::make_unique<HostSource>(packet_count, /*seed=*/42));
  pair.transmit.red = net.AddNode(std::make_unique<RedHost>());
  pair.transmit.crypto = net.AddNode(std::make_unique<CryptoBox>(key));
  pair.transmit.censor = net.AddNode(std::make_unique<Censor>(strictness));
  pair.transmit.black = net.AddNode(std::make_unique<BlackHost>());
  pair.black_rx = net.AddNode(std::make_unique<BlackReceiver>());
  pair.crypto_rx = net.AddNode(std::make_unique<CryptoBox>(key));
  pair.censor_rx = net.AddNode(std::make_unique<Censor>(strictness));
  pair.red_rx = net.AddNode(std::make_unique<RedReceiver>());
  pair.host_rx = net.AddNode(std::make_unique<HostSink>());
  pair.transmit.network = pair.black_rx;

  net.Connect(pair.transmit.host, pair.transmit.red, 512, 1, "host-line");
  net.Connect(pair.transmit.red, pair.transmit.crypto, 512, 1, "red-crypto");
  net.Connect(pair.transmit.red, pair.transmit.censor, 512, 1, "bypass-tx");
  net.Connect(pair.transmit.censor, pair.transmit.black, 512, 1, "censor-black");
  net.Connect(pair.transmit.crypto, pair.transmit.black, 512, 1, "crypto-black");
  // "The network" is now an adversarial medium: a reliable tunnel whose
  // data and ACK lines both misbehave per the installed fault schedule.
  topo.tunnel = SpliceReliableTunnel(net, pair.transmit.black, pair.black_rx, reliable,
                                     /*capacity=*/512, /*latency=*/3, "the-network");
  net.InjectFaults(topo.tunnel.data_link, net_faults, fault_seed);
  net.InjectFaults(topo.tunnel.ack_link, net_faults, fault_seed ^ 0x5A5A5A5A5A5A5A5AULL);
  net.Connect(pair.black_rx, pair.crypto_rx, 512, 1, "blackrx-crypto");
  net.Connect(pair.black_rx, pair.censor_rx, 512, 1, "bypass-rx");
  net.Connect(pair.censor_rx, pair.red_rx, 512, 1, "censor-redrx");
  net.Connect(pair.crypto_rx, pair.red_rx, 512, 1, "crypto-redrx");
  net.Connect(pair.red_rx, pair.host_rx, 512, 1, "host-line-rx");
  return topo;
}

SnfeRecoverableTopology BuildSnfePairRecoverable(Network& net, CensorStrictness strictness,
                                                 const FaultSpec& net_faults,
                                                 std::uint64_t fault_seed,
                                                 const TunnelRecoveryOptions& recovery,
                                                 int packet_count, std::uint64_t key,
                                                 const ReliableConfig& reliable) {
  SnfeRecoverableTopology topo;
  SnfePairTopology& pair = topo.pair;

  pair.transmit.host = net.AddNode(std::make_unique<HostSource>(packet_count, /*seed=*/42));
  pair.transmit.red = net.AddNode(std::make_unique<RedHost>());
  pair.transmit.crypto = net.AddNode(std::make_unique<CryptoBox>(key));
  pair.transmit.censor = net.AddNode(std::make_unique<Censor>(strictness));
  pair.transmit.black = net.AddNode(std::make_unique<BlackHost>());
  pair.black_rx = net.AddNode(std::make_unique<BlackReceiver>());
  pair.crypto_rx = net.AddNode(std::make_unique<CryptoBox>(key));
  pair.censor_rx = net.AddNode(std::make_unique<Censor>(strictness));
  pair.red_rx = net.AddNode(std::make_unique<RedReceiver>());
  pair.host_rx = net.AddNode(std::make_unique<HostSink>());
  pair.transmit.network = pair.black_rx;

  net.Connect(pair.transmit.host, pair.transmit.red, 512, 1, "host-line");
  net.Connect(pair.transmit.red, pair.transmit.crypto, 512, 1, "red-crypto");
  net.Connect(pair.transmit.red, pair.transmit.censor, 512, 1, "bypass-tx");
  net.Connect(pair.transmit.censor, pair.transmit.black, 512, 1, "censor-black");
  net.Connect(pair.transmit.crypto, pair.transmit.black, 512, 1, "crypto-black");
  // "The network" is an adversarial medium whose relay MACHINES die too:
  // the recoverable tunnel's crashable endpoints sit between the two black
  // sides, with the wire-fault schedule on the lossy middle.
  topo.tunnel = SpliceRecoverableTunnel(net, pair.transmit.black, pair.black_rx, reliable,
                                        recovery, /*capacity=*/512, /*latency=*/3,
                                        "the-network");
  net.InjectFaults(topo.tunnel.data_link, net_faults, fault_seed);
  net.InjectFaults(topo.tunnel.ack_link, net_faults, fault_seed ^ 0x5A5A5A5A5A5A5A5AULL);
  net.Connect(pair.black_rx, pair.crypto_rx, 512, 1, "blackrx-crypto");
  net.Connect(pair.black_rx, pair.censor_rx, 512, 1, "bypass-rx");
  net.Connect(pair.censor_rx, pair.red_rx, 512, 1, "censor-redrx");
  net.Connect(pair.crypto_rx, pair.red_rx, 512, 1, "crypto-redrx");
  net.Connect(pair.red_rx, pair.host_rx, 512, 1, "host-line-rx");
  return topo;
}

}  // namespace sep
