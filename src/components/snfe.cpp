#include "src/components/snfe.h"

#include "src/machine/devices.h"

namespace sep {

// --- RedHost ---------------------------------------------------------------------

void RedHost::Step(NodeContext& ctx) {
  from_host_.Poll(ctx, 0);
  if (std::optional<Frame> packet = from_host_.Next()) {
    if (packet->type == kPktHost && packet->fields.size() >= 3) {
      Frame header{kPktHdr,
                   {packet->fields[0], packet->fields[1], packet->fields[2]}};
      Frame payload{kPktPayload,
                    {packet->fields.begin() + 3, packet->fields.end()}};
      to_crypto_.Queue(payload);
      to_bypass_.Queue(header);
    }
  }
  to_crypto_.Flush(ctx, 0);
  to_bypass_.Flush(ctx, 1);
}

// --- EvilRedHost -----------------------------------------------------------------

void EvilRedHost::Step(NodeContext& ctx) {
  from_host_.Poll(ctx, 0);
  while (std::optional<Frame> packet = from_host_.Next()) {
    if (packet->type == kPktHost && packet->fields.size() >= 3) {
      host_backlog_.push_back(*packet);
    }
  }

  if (!host_backlog_.empty() && ctx.now() >= wait_until_) {
    Frame packet = std::move(host_backlog_.front());
    host_backlog_.pop_front();

    const int bit =
        next_bit_ < secret_.size() ? secret_[next_bit_] : 0;
    Word dest = packet.fields[0];
    Word length = packet.fields[1];
    Word flags = packet.fields[2];
    switch (mode_) {
      case LeakMode::kFlagEncoding:
        // The secret bit rides in the discretionary flags field.
        flags = static_cast<Word>(bit);
        break;
      case LeakMode::kLengthEncoding:
        // The secret bit rides in the parity of the advertised length.
        length = static_cast<Word>((length & ~1u) | static_cast<Word>(bit));
        break;
      case LeakMode::kTimingEncoding:
        // The secret bit rides in the spacing to the NEXT header.
        wait_until_ = ctx.now() + (bit != 0 ? 6 : 2);
        break;
    }
    if (next_bit_ < secret_.size()) {
      ++next_bit_;
    }

    to_bypass_.Queue(Frame{kPktHdr, {dest, length, flags}});
    to_crypto_.Queue(Frame{kPktPayload, {packet.fields.begin() + 3, packet.fields.end()}});
  }

  to_crypto_.Flush(ctx, 0);
  to_bypass_.Flush(ctx, 1);
}

// --- CryptoBox -------------------------------------------------------------------

void CryptoBox::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (frame->type != kPktPayload) {
      continue;  // the crypto passes nothing it does not understand
    }
    Frame cipher{kPktCipher, {}};
    cipher.fields.reserve(frame->fields.size());
    for (Word w : frame->fields) {
      cipher.fields.push_back(static_cast<Word>(w ^ CryptoUnit::Keystream(key_, counter_++)));
    }
    writer_.Queue(cipher);
  }
  writer_.Flush(ctx, 0);
}

// --- Censor ----------------------------------------------------------------------

const char* CensorStrictnessName(CensorStrictness s) {
  switch (s) {
    case CensorStrictness::kOff:
      return "off";
    case CensorStrictness::kSyntax:
      return "syntax";
    case CensorStrictness::kCanonical:
      return "canonical";
    case CensorStrictness::kRateLimited:
      return "rate-limited";
  }
  return "?";
}

bool Censor::SyntaxValid(const Frame& frame) const {
  if (frame.type != kPktHdr) {
    return false;
  }
  if (frame.fields.size() != 3) {
    return false;
  }
  const Word dest = frame.fields[0];
  const Word length = frame.fields[1];
  const Word flags = frame.fields[2];
  return dest < kMaxDest && length <= kMaxLength && flags <= 1;
}

void Censor::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (strictness_ == CensorStrictness::kOff) {
      delay_queue_.push_back(*frame);
      continue;
    }
    if (!SyntaxValid(*frame)) {
      ++stats_.dropped;
      continue;
    }
    Frame accepted = *frame;
    if (strictness_ == CensorStrictness::kCanonical ||
        strictness_ == CensorStrictness::kRateLimited) {
      // Canonicalization: discretionary fields are rewritten to fixed
      // values, and the advertised length is rounded up to a bucket — the
      // procedural checks that make the surviving fields carry as little
      // sender-chosen information as possible.
      if (accepted.fields[2] != 0) {
        accepted.fields[2] = 0;
        ++stats_.rewritten;
      }
      const Word rounded = static_cast<Word>(((accepted.fields[1] + 15) / 16) * 16);
      if (rounded != accepted.fields[1]) {
        accepted.fields[1] = rounded;
        ++stats_.rewritten;
      }
    }
    delay_queue_.push_back(accepted);
  }

  // Forwarding, possibly rate-limited to flatten timing channels.
  if (!delay_queue_.empty()) {
    const bool gate_open = strictness_ != CensorStrictness::kRateLimited ||
                           ctx.now() >= last_forward_ + min_gap_;
    if (gate_open) {
      writer_.Queue(delay_queue_.front());
      delay_queue_.pop_front();
      last_forward_ = ctx.now();
      ++stats_.forwarded;
    } else {
      ++stats_.delayed;
    }
  }
  writer_.Flush(ctx, 0);
}

// --- BlackHost -------------------------------------------------------------------

void BlackHost::Step(NodeContext& ctx) {
  from_censor_.Poll(ctx, 0);
  while (std::optional<Frame> frame = from_censor_.Next()) {
    if (frame->type == kPktHdr && frame->fields.size() == 3) {
      headers_.push_back(*frame);
    }
  }
  from_crypto_.Poll(ctx, 1);
  while (std::optional<Frame> frame = from_crypto_.Next()) {
    if (frame->type == kPktCipher) {
      payloads_.push_back(*frame);
    }
  }

  if (!headers_.empty() && !payloads_.empty()) {
    Frame header = std::move(headers_.front());
    headers_.pop_front();
    Frame payload = std::move(payloads_.front());
    payloads_.pop_front();
    Frame net{kPktNet, {header.fields[0], header.fields[1], header.fields[2]}};
    net.fields.insert(net.fields.end(), payload.fields.begin(), payload.fields.end());
    to_network_.Queue(net);
  }
  to_network_.Flush(ctx, 0);
}

// --- HostSource ------------------------------------------------------------------

HostSource::HostSource(int packet_count, std::uint64_t seed, int payload_words) {
  Rng rng(seed);
  for (int i = 0; i < packet_count; ++i) {
    Frame packet{kPktHost,
                 {static_cast<Word>(rng.NextBelow(kMaxDest)),
                  static_cast<Word>(payload_words), 0}};
    for (int w = 0; w < payload_words; ++w) {
      packet.fields.push_back(static_cast<Word>(rng.Next() & 0xFFFF));
    }
    packets_.push_back(std::move(packet));
  }
}

void HostSource::Step(NodeContext& ctx) {
  if (sent_ < packets_.size() && writer_.idle()) {
    writer_.Queue(packets_[sent_++]);
  }
  writer_.Flush(ctx, 0);
}

// --- NetworkSink -----------------------------------------------------------------

void NetworkSink::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (frame->type == kPktNet) {
      packets_.push_back(*frame);
      arrivals_.push_back(ctx.now());
    }
  }
}

bool NetworkSink::ContainsCleartext(const std::vector<Word>& needle, std::size_t min_run) const {
  if (needle.size() < min_run) {
    return false;
  }
  for (const Frame& packet : packets_) {
    const std::vector<Word>& hay = packet.fields;
    for (std::size_t start = 0; start + min_run <= hay.size(); ++start) {
      for (std::size_t n = 0; n + min_run <= needle.size(); ++n) {
        std::size_t match = 0;
        while (start + match < hay.size() && n + match < needle.size() &&
               hay[start + match] == needle[n + match]) {
          ++match;
        }
        if (match >= min_run) {
          return true;
        }
      }
    }
  }
  return false;
}

std::vector<int> NetworkSink::DecodeFlagBits() const {
  std::vector<int> bits;
  for (const Frame& packet : packets_) {
    bits.push_back(packet.fields.size() > 2 && packet.fields[2] != 0 ? 1 : 0);
  }
  return bits;
}

std::vector<int> NetworkSink::DecodeLengthBits() const {
  std::vector<int> bits;
  for (const Frame& packet : packets_) {
    bits.push_back(packet.fields.size() > 1 ? static_cast<int>(packet.fields[1] & 1) : 0);
  }
  return bits;
}

std::vector<int> NetworkSink::DecodeTimingBits() const {
  std::vector<int> bits;
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    bits.push_back(arrivals_[i] - arrivals_[i - 1] >= 5 ? 1 : 0);
  }
  return bits;
}

std::size_t MatchingPrefixBits(const std::vector<int>& sent, const std::vector<int>& received) {
  std::size_t n = 0;
  while (n < sent.size() && n < received.size() && sent[n] == received[n]) {
    ++n;
  }
  return n;
}

// --- BuildSnfe -------------------------------------------------------------------

SnfeTopology BuildSnfe(Network& net, CensorStrictness strictness, bool evil,
                       std::vector<int> secret_bits, LeakMode mode, int packet_count,
                       std::uint64_t key, Tick censor_gap) {
  SnfeTopology topo;
  topo.host = net.AddNode(std::make_unique<HostSource>(packet_count, /*seed=*/42));
  if (evil) {
    topo.red = net.AddNode(std::make_unique<EvilRedHost>(std::move(secret_bits), mode));
  } else {
    topo.red = net.AddNode(std::make_unique<RedHost>());
  }
  topo.crypto = net.AddNode(std::make_unique<CryptoBox>(key));
  topo.censor = net.AddNode(std::make_unique<Censor>(strictness, censor_gap));
  topo.black = net.AddNode(std::make_unique<BlackHost>());
  topo.network = net.AddNode(std::make_unique<NetworkSink>());

  // The paper's exact line set — and nothing else. Port numbering is by
  // declaration order per node: red's out0 feeds the crypto and out1 the
  // bypass; black's in0 comes from the censor and in1 from the crypto.
  net.Connect(topo.host, topo.red, 512, 1, "host-line");
  net.Connect(topo.red, topo.crypto, 512, 1, "red-crypto");
  net.Connect(topo.red, topo.censor, 512, 1, "bypass");
  net.Connect(topo.censor, topo.black, 512, 1, "censor-black");
  net.Connect(topo.crypto, topo.black, 512, 1, "crypto-black");
  net.Connect(topo.black, topo.network, 512, 1, "network-line");
  return topo;
}

}  // namespace sep
