// Framing and encoding helpers shared by the trusted components.
//
// Components exchange flat word streams (that is all a communication line
// carries); structured requests ride on a trivial framing protocol:
//
//   [length][type][field words ...]     length = 1 + #fields
//
// FrameReader reassembles frames from an in-port; FrameWriter queues frames
// toward an out-port, respecting link backpressure. Security levels travel
// as one word: classification in the low 2 bits, the first 14 category bits
// above them.
#ifndef SRC_COMPONENTS_WIRE_H_
#define SRC_COMPONENTS_WIRE_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/distributed/network.h"
#include "src/security/level.h"

namespace sep {

struct Frame {
  Word type = 0;
  std::vector<Word> fields;

  bool operator==(const Frame& other) const = default;
};

class FrameWriter {
 public:
  void Queue(const Frame& frame) {
    pending_.push_back(static_cast<Word>(1 + frame.fields.size()));
    pending_.push_back(frame.type);
    for (Word w : frame.fields) {
      pending_.push_back(w);
    }
  }

  // Pushes as many queued words as the link accepts.
  void Flush(NodeContext& ctx, int port) {
    while (!pending_.empty() && ctx.Send(port, pending_.front())) {
      pending_.pop_front();
    }
  }

  bool idle() const { return pending_.empty(); }
  std::size_t backlog() const { return pending_.size(); }

 private:
  std::deque<Word> pending_;
};

class FrameReader {
 public:
  // Consumes every word currently available on the port.
  void Poll(NodeContext& ctx, int port) {
    while (std::optional<Word> w = ctx.Receive(port)) {
      buffer_.push_back(*w);
    }
  }

  // Feeds one raw word (for non-network uses).
  void Feed(Word w) { buffer_.push_back(w); }

  std::optional<Frame> Next() {
    if (buffer_.empty()) {
      return std::nullopt;
    }
    const Word length = buffer_.front();
    if (length == 0) {
      // Malformed: resynchronise by dropping the word.
      buffer_.pop_front();
      return std::nullopt;
    }
    if (buffer_.size() < static_cast<std::size_t>(length) + 1) {
      return std::nullopt;  // incomplete
    }
    Frame frame;
    buffer_.pop_front();  // length
    frame.type = buffer_.front();
    buffer_.pop_front();
    for (Word i = 1; i < length; ++i) {
      frame.fields.push_back(buffer_.front());
      buffer_.pop_front();
    }
    return frame;
  }

 private:
  std::deque<Word> buffer_;
};

// --- small encodings ---------------------------------------------------------

inline Word EncodeLevel(const SecurityLevel& level) {
  return static_cast<Word>(static_cast<Word>(level.classification()) |
                           ((level.categories().bits() & 0x3FFF) << 2));
}

inline SecurityLevel DecodeLevel(Word code) {
  return SecurityLevel(static_cast<Classification>(code & 0x3),
                       CategorySet(static_cast<std::uint16_t>(code >> 2)));
}

inline std::vector<Word> StringToWords(const std::string& text) {
  std::vector<Word> out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    out.push_back(c);
  }
  return out;
}

inline std::string WordsToString(const std::vector<Word>& words, std::size_t begin = 0,
                                 std::size_t count = static_cast<std::size_t>(-1)) {
  std::string out;
  for (std::size_t i = begin; i < words.size() && out.size() < count; ++i) {
    out.push_back(static_cast<char>(words[i] & 0xFF));
  }
  return out;
}

}  // namespace sep

#endif  // SRC_COMPONENTS_WIRE_H_
