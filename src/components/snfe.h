// The Secure Network Front End of the paper's Section 2 (experiments E1
// and E9).
//
//   host === [ RED ] ---payload---> [ CRYPTO ] ---cipher---> [ BLACK ] === net
//              |                                                ^
//              +------ cleartext bypass ----> [ CENSOR ] -------+
//
// The security requirement: user data from the host must not reach the
// network in cleartext. The red software is "too large and complex to
// verify", so a CENSOR performs rigid procedural checks on the bypass; the
// system's remaining security comes from the physical separation of the
// four boxes and the absence of any other line — which experiment E1
// audits over the declared topology.
//
// Frames:
//   host -> red        kPktHost    : [dest, length, flags, payload...]
//   red -> crypto      kPktPayload : [payload words...]
//   crypto -> black    kPktCipher  : [encrypted payload words...]
//   red -> censor      kPktHdr     : [dest, length, flags]
//   censor -> black    kPktHdr
//   black -> network   kPktNet     : [dest, length, flags, cipher...]
#ifndef SRC_COMPONENTS_SNFE_H_
#define SRC_COMPONENTS_SNFE_H_

#include <deque>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/components/wire.h"
#include "src/distributed/network.h"

namespace sep {

inline constexpr Word kPktHost = 0x61;
inline constexpr Word kPktPayload = 0x62;
inline constexpr Word kPktCipher = 0x63;
inline constexpr Word kPktHdr = 0x64;
inline constexpr Word kPktNet = 0x65;

// Bounds the censor enforces on header fields.
inline constexpr Word kMaxDest = 64;
inline constexpr Word kMaxLength = 128;

// --- red side ------------------------------------------------------------------

// The honest red component: splits each host packet into a payload (to the
// crypto, port 0) and a protocol header (to the bypass, port 1).
class RedHost : public Process {
 public:
  RedHost() = default;
  std::string name() const override { return "red"; }
  void Step(NodeContext& ctx) override;

 private:
  FrameReader from_host_;
  FrameWriter to_crypto_;
  FrameWriter to_bypass_;
};

// The dishonest red component for E9: additionally encodes a secret bit
// string into the bypass traffic.
enum class LeakMode : std::uint8_t {
  kFlagEncoding,    // secret bit -> header flags field
  kLengthEncoding,  // secret bit -> parity of the advertised length field
  kTimingEncoding,  // secret bit -> gap (1 or 2 idle steps) between headers
};

class EvilRedHost : public Process {
 public:
  EvilRedHost(std::vector<int> secret_bits, LeakMode mode)
      : secret_(std::move(secret_bits)), mode_(mode) {}
  std::string name() const override { return "red(evil)"; }
  void Step(NodeContext& ctx) override;

  std::size_t bits_encoded() const { return next_bit_; }

 private:
  FrameReader from_host_;
  FrameWriter to_crypto_;
  FrameWriter to_bypass_;
  std::vector<int> secret_;
  LeakMode mode_;
  std::size_t next_bit_ = 0;
  Tick wait_until_ = 0;
  std::deque<Frame> host_backlog_;
};

// --- crypto --------------------------------------------------------------------

// The trusted crypto box: encrypts the FIELDS of kPktPayload frames with a
// keyed word-stream cipher, preserving framing (a link encryptor). Shares
// its keystream definition with the machine-level CryptoUnit device.
class CryptoBox : public Process {
 public:
  explicit CryptoBox(std::uint64_t key) : key_(key) {}
  std::string name() const override { return "crypto"; }
  void Step(NodeContext& ctx) override;

  std::uint64_t words_encrypted() const { return counter_; }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
  FrameReader reader_;
  FrameWriter writer_;
};

// --- censor --------------------------------------------------------------------

enum class CensorStrictness : std::uint8_t {
  kOff,         // forward everything (the unprotected baseline)
  kSyntax,      // frame type/shape/field-range checks
  kCanonical,   // syntax + rewrite discretionary fields to canonical values
  kRateLimited, // canonical + minimum gap between forwarded headers
};

const char* CensorStrictnessName(CensorStrictness s);

struct CensorStats {
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rewritten = 0;
  std::uint64_t delayed = 0;
};

class Censor : public Process {
 public:
  explicit Censor(CensorStrictness strictness, Tick min_gap = 4)
      : strictness_(strictness), min_gap_(min_gap) {}

  std::string name() const override { return "censor"; }
  void Step(NodeContext& ctx) override;

  const CensorStats& stats() const { return stats_; }

 private:
  bool SyntaxValid(const Frame& frame) const;

  CensorStrictness strictness_;
  Tick min_gap_;
  Tick last_forward_ = 0;
  std::deque<Frame> delay_queue_;
  FrameReader reader_;
  FrameWriter writer_;
  CensorStats stats_;
};

// --- black side ------------------------------------------------------------------

// Pairs a header (port 0, from the censor) with a ciphertext payload
// (port 1, from the crypto) and emits a network packet.
class BlackHost : public Process {
 public:
  BlackHost() = default;
  std::string name() const override { return "black"; }
  void Step(NodeContext& ctx) override;

 private:
  FrameReader from_censor_;
  FrameReader from_crypto_;
  FrameWriter to_network_;
  std::deque<Frame> headers_;
  std::deque<Frame> payloads_;
};

// --- endpoints -------------------------------------------------------------------

// Generates deterministic host packets.
class HostSource : public Process {
 public:
  HostSource(int packet_count, std::uint64_t seed, int payload_words = 8);
  std::string name() const override { return "host"; }
  void Step(NodeContext& ctx) override;
  bool Finished() const override { return sent_ >= packets_.size() && writer_.idle(); }

  const std::vector<Frame>& packets() const { return packets_; }

 private:
  std::vector<Frame> packets_;
  std::size_t sent_ = 0;
  FrameWriter writer_;
};

// Collects network packets; can audit them for cleartext leakage and decode
// covert channels.
class NetworkSink : public Process {
 public:
  NetworkSink() = default;
  std::string name() const override { return "network"; }
  void Step(NodeContext& ctx) override;

  const std::vector<Frame>& packets() const { return packets_; }
  // Arrival step of each header (for timing-channel decoding).
  const std::vector<Tick>& arrival_times() const { return arrivals_; }

  // True if any `needle` run of >= min_run consecutive words appears in any
  // received packet payload — the cleartext-on-the-wire detector.
  bool ContainsCleartext(const std::vector<Word>& needle, std::size_t min_run = 4) const;

  // Covert decoders matching EvilRedHost's encodings. Return the bit string
  // an adversary on the network side would recover.
  std::vector<int> DecodeFlagBits() const;
  std::vector<int> DecodeLengthBits() const;
  std::vector<int> DecodeTimingBits() const;

 private:
  FrameReader reader_;
  std::vector<Frame> packets_;
  std::vector<Tick> arrivals_;
};

// Counts the number of leading positions where the two bit strings agree —
// the covert channel's delivered payload.
std::size_t MatchingPrefixBits(const std::vector<int>& sent, const std::vector<int>& received);

// --- assembled system ------------------------------------------------------------

struct SnfeTopology {
  int host = -1;
  int red = -1;
  int crypto = -1;
  int censor = -1;
  int black = -1;
  int network = -1;
};

// Builds the complete SNFE into `net` with the paper's exact line set.
// `evil` selects the dishonest red; secret/mode configure its channel.
SnfeTopology BuildSnfe(Network& net, CensorStrictness strictness, bool evil = false,
                       std::vector<int> secret_bits = {}, LeakMode mode = LeakMode::kFlagEncoding,
                       int packet_count = 32, std::uint64_t key = 0xC0FFEE, Tick censor_gap = 4);

}  // namespace sep

#endif  // SRC_COMPONENTS_SNFE_H_
