#include "src/components/guard.h"

#include <cctype>

#include "src/base/strings.h"

namespace sep {

ReviewVerdict DefaultWatchOfficer(const std::string& message) {
  if (StartsWith(message, "UNCLAS:")) {
    return {ReviewOutcome::kRelease, {}};
  }
  if (StartsWith(message, "REVIEW:")) {
    // Declassify by redaction: digit runs (coordinates, designators) are
    // masked before release.
    std::string redacted = message.substr(7);
    for (char& c : redacted) {
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        c = '#';
      }
    }
    return {ReviewOutcome::kRedact, redacted};
  }
  return {ReviewOutcome::kDeny, {}};
}

Guard::Guard(ReviewPolicy policy, Tick review_delay)
    : policy_(std::move(policy)), review_delay_(review_delay) {}

void Guard::Step(NodeContext& ctx) {
  // LOW -> HIGH: unhindered.
  from_low_.Poll(ctx, 0);
  while (std::optional<Frame> frame = from_low_.Next()) {
    if (frame->type == kGuardMsg) {
      to_high_.Queue(*frame);
      ++stats_.low_to_high;
      audit_.push_back("L>H pass: " + WordsToString(frame->fields));
    }
  }

  // HIGH -> LOW: into the review queue.
  from_high_.Poll(ctx, 1);
  while (std::optional<Frame> frame = from_high_.Next()) {
    if (frame->type == kGuardMsg) {
      review_queue_.push_back({WordsToString(frame->fields), ctx.now() + review_delay_});
    }
  }

  // The watch officer works through the queue in order, one verdict per
  // quantum once the review delay has elapsed.
  if (!review_queue_.empty() && review_queue_.front().ready_at <= ctx.now()) {
    PendingReview review = std::move(review_queue_.front());
    review_queue_.pop_front();
    ReviewVerdict verdict = policy_(review.text);
    switch (verdict.outcome) {
      case ReviewOutcome::kRelease:
        to_low_.Queue(Frame{kGuardMsg, StringToWords(review.text)});
        ++stats_.high_to_low_released;
        audit_.push_back("H>L release: " + review.text);
        break;
      case ReviewOutcome::kRedact:
        to_low_.Queue(Frame{kGuardMsg, StringToWords(verdict.redacted_text)});
        ++stats_.high_to_low_redacted;
        audit_.push_back("H>L redact: " + review.text + " -> " + verdict.redacted_text);
        break;
      case ReviewOutcome::kDeny:
        ++stats_.high_to_low_denied;
        audit_.push_back("H>L deny: " + review.text);
        break;
    }
  }

  to_low_.Flush(ctx, 0);
  to_high_.Flush(ctx, 1);
}

void MessageSource::Step(NodeContext& ctx) {
  if (next_ < messages_.size() && writer_.idle()) {
    writer_.Queue(Frame{kGuardMsg, StringToWords(messages_[next_++])});
  }
  writer_.Flush(ctx, 0);
}

void MessageSink::Step(NodeContext& ctx) {
  reader_.Poll(ctx, 0);
  while (std::optional<Frame> frame = reader_.Next()) {
    if (frame->type == kGuardMsg) {
      received_.push_back(WordsToString(frame->fields));
    }
  }
}

}  // namespace sep
