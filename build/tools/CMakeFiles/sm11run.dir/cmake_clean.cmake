file(REMOVE_RECURSE
  "CMakeFiles/sm11run.dir/sm11run.cpp.o"
  "CMakeFiles/sm11run.dir/sm11run.cpp.o.d"
  "sm11run"
  "sm11run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm11run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
