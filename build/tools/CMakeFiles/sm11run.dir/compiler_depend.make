# Empty compiler generated dependencies file for sm11run.
# This may be replaced when dependencies are built.
