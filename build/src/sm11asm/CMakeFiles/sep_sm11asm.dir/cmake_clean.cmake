file(REMOVE_RECURSE
  "CMakeFiles/sep_sm11asm.dir/assembler.cpp.o"
  "CMakeFiles/sep_sm11asm.dir/assembler.cpp.o.d"
  "libsep_sm11asm.a"
  "libsep_sm11asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_sm11asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
