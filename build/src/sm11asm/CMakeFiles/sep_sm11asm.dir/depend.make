# Empty dependencies file for sep_sm11asm.
# This may be replaced when dependencies are built.
