file(REMOVE_RECURSE
  "libsep_sm11asm.a"
)
