# CMake generated Testfile for 
# Source directory: /root/repo/src/sm11asm
# Build directory: /root/repo/build/src/sm11asm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
