file(REMOVE_RECURSE
  "libsep_model.a"
)
