file(REMOVE_RECURSE
  "CMakeFiles/sep_model.dir/shared_system.cpp.o"
  "CMakeFiles/sep_model.dir/shared_system.cpp.o.d"
  "libsep_model.a"
  "libsep_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
