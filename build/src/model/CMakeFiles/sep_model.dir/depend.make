# Empty dependencies file for sep_model.
# This may be replaced when dependencies are built.
