file(REMOVE_RECURSE
  "libsep_core.a"
)
