# Empty dependencies file for sep_core.
# This may be replaced when dependencies are built.
