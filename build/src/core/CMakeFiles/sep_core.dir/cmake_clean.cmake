file(REMOVE_RECURSE
  "CMakeFiles/sep_core.dir/exhaustive.cpp.o"
  "CMakeFiles/sep_core.dir/exhaustive.cpp.o.d"
  "CMakeFiles/sep_core.dir/indistinguishability.cpp.o"
  "CMakeFiles/sep_core.dir/indistinguishability.cpp.o.d"
  "CMakeFiles/sep_core.dir/kernel_system.cpp.o"
  "CMakeFiles/sep_core.dir/kernel_system.cpp.o.d"
  "CMakeFiles/sep_core.dir/separability.cpp.o"
  "CMakeFiles/sep_core.dir/separability.cpp.o.d"
  "libsep_core.a"
  "libsep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
