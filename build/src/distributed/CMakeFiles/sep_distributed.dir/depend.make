# Empty dependencies file for sep_distributed.
# This may be replaced when dependencies are built.
