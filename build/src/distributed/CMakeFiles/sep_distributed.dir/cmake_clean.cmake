file(REMOVE_RECURSE
  "CMakeFiles/sep_distributed.dir/network.cpp.o"
  "CMakeFiles/sep_distributed.dir/network.cpp.o.d"
  "libsep_distributed.a"
  "libsep_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
