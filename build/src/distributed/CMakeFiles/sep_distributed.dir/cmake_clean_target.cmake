file(REMOVE_RECURSE
  "libsep_distributed.a"
)
