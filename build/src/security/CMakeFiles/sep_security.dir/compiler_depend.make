# Empty compiler generated dependencies file for sep_security.
# This may be replaced when dependencies are built.
