file(REMOVE_RECURSE
  "libsep_security.a"
)
