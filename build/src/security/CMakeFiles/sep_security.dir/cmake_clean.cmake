file(REMOVE_RECURSE
  "CMakeFiles/sep_security.dir/blp.cpp.o"
  "CMakeFiles/sep_security.dir/blp.cpp.o.d"
  "CMakeFiles/sep_security.dir/level.cpp.o"
  "CMakeFiles/sep_security.dir/level.cpp.o.d"
  "libsep_security.a"
  "libsep_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
