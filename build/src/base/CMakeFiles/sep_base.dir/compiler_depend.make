# Empty compiler generated dependencies file for sep_base.
# This may be replaced when dependencies are built.
