file(REMOVE_RECURSE
  "CMakeFiles/sep_base.dir/logging.cpp.o"
  "CMakeFiles/sep_base.dir/logging.cpp.o.d"
  "CMakeFiles/sep_base.dir/rng.cpp.o"
  "CMakeFiles/sep_base.dir/rng.cpp.o.d"
  "CMakeFiles/sep_base.dir/strings.cpp.o"
  "CMakeFiles/sep_base.dir/strings.cpp.o.d"
  "libsep_base.a"
  "libsep_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
