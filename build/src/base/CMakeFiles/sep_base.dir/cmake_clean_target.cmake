file(REMOVE_RECURSE
  "libsep_base.a"
)
