
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ifa/analyzer.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/analyzer.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/analyzer.cpp.o.d"
  "/root/repo/src/ifa/interpreter.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/interpreter.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/interpreter.cpp.o.d"
  "/root/repo/src/ifa/kernel_programs.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/kernel_programs.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/kernel_programs.cpp.o.d"
  "/root/repo/src/ifa/lattice.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/lattice.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/lattice.cpp.o.d"
  "/root/repo/src/ifa/parser.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/parser.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/parser.cpp.o.d"
  "/root/repo/src/ifa/semantic.cpp" "src/ifa/CMakeFiles/sep_ifa.dir/semantic.cpp.o" "gcc" "src/ifa/CMakeFiles/sep_ifa.dir/semantic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sep_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
