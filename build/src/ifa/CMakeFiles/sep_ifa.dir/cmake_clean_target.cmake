file(REMOVE_RECURSE
  "libsep_ifa.a"
)
