# Empty compiler generated dependencies file for sep_ifa.
# This may be replaced when dependencies are built.
