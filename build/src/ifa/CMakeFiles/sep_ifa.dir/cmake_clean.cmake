file(REMOVE_RECURSE
  "CMakeFiles/sep_ifa.dir/analyzer.cpp.o"
  "CMakeFiles/sep_ifa.dir/analyzer.cpp.o.d"
  "CMakeFiles/sep_ifa.dir/interpreter.cpp.o"
  "CMakeFiles/sep_ifa.dir/interpreter.cpp.o.d"
  "CMakeFiles/sep_ifa.dir/kernel_programs.cpp.o"
  "CMakeFiles/sep_ifa.dir/kernel_programs.cpp.o.d"
  "CMakeFiles/sep_ifa.dir/lattice.cpp.o"
  "CMakeFiles/sep_ifa.dir/lattice.cpp.o.d"
  "CMakeFiles/sep_ifa.dir/parser.cpp.o"
  "CMakeFiles/sep_ifa.dir/parser.cpp.o.d"
  "CMakeFiles/sep_ifa.dir/semantic.cpp.o"
  "CMakeFiles/sep_ifa.dir/semantic.cpp.o.d"
  "libsep_ifa.a"
  "libsep_ifa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_ifa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
