# CMake generated Testfile for 
# Source directory: /root/repo/src/ifa
# Build directory: /root/repo/build/src/ifa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
