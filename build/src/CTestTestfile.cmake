# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("security")
subdirs("machine")
subdirs("sm11asm")
subdirs("kernel")
subdirs("model")
subdirs("core")
subdirs("ifa")
subdirs("distributed")
subdirs("components")
