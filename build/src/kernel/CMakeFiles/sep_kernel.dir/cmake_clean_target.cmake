file(REMOVE_RECURSE
  "libsep_kernel.a"
)
