# Empty compiler generated dependencies file for sep_kernel.
# This may be replaced when dependencies are built.
