file(REMOVE_RECURSE
  "CMakeFiles/sep_kernel.dir/config.cpp.o"
  "CMakeFiles/sep_kernel.dir/config.cpp.o.d"
  "CMakeFiles/sep_kernel.dir/kernel.cpp.o"
  "CMakeFiles/sep_kernel.dir/kernel.cpp.o.d"
  "libsep_kernel.a"
  "libsep_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
