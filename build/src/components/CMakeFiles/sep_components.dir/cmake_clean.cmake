file(REMOVE_RECURSE
  "CMakeFiles/sep_components.dir/auth.cpp.o"
  "CMakeFiles/sep_components.dir/auth.cpp.o.d"
  "CMakeFiles/sep_components.dir/fileserver.cpp.o"
  "CMakeFiles/sep_components.dir/fileserver.cpp.o.d"
  "CMakeFiles/sep_components.dir/guard.cpp.o"
  "CMakeFiles/sep_components.dir/guard.cpp.o.d"
  "CMakeFiles/sep_components.dir/printserver.cpp.o"
  "CMakeFiles/sep_components.dir/printserver.cpp.o.d"
  "CMakeFiles/sep_components.dir/snfe.cpp.o"
  "CMakeFiles/sep_components.dir/snfe.cpp.o.d"
  "CMakeFiles/sep_components.dir/snfe_receive.cpp.o"
  "CMakeFiles/sep_components.dir/snfe_receive.cpp.o.d"
  "libsep_components.a"
  "libsep_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
