# Empty dependencies file for sep_components.
# This may be replaced when dependencies are built.
