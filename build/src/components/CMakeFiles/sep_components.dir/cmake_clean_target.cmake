file(REMOVE_RECURSE
  "libsep_components.a"
)
