
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/components/auth.cpp" "src/components/CMakeFiles/sep_components.dir/auth.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/auth.cpp.o.d"
  "/root/repo/src/components/fileserver.cpp" "src/components/CMakeFiles/sep_components.dir/fileserver.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/fileserver.cpp.o.d"
  "/root/repo/src/components/guard.cpp" "src/components/CMakeFiles/sep_components.dir/guard.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/guard.cpp.o.d"
  "/root/repo/src/components/printserver.cpp" "src/components/CMakeFiles/sep_components.dir/printserver.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/printserver.cpp.o.d"
  "/root/repo/src/components/snfe.cpp" "src/components/CMakeFiles/sep_components.dir/snfe.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/snfe.cpp.o.d"
  "/root/repo/src/components/snfe_receive.cpp" "src/components/CMakeFiles/sep_components.dir/snfe_receive.cpp.o" "gcc" "src/components/CMakeFiles/sep_components.dir/snfe_receive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sep_base.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/sep_security.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/sep_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/sep_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
