file(REMOVE_RECURSE
  "CMakeFiles/sep_machine.dir/cpu.cpp.o"
  "CMakeFiles/sep_machine.dir/cpu.cpp.o.d"
  "CMakeFiles/sep_machine.dir/devices.cpp.o"
  "CMakeFiles/sep_machine.dir/devices.cpp.o.d"
  "CMakeFiles/sep_machine.dir/isa.cpp.o"
  "CMakeFiles/sep_machine.dir/isa.cpp.o.d"
  "CMakeFiles/sep_machine.dir/machine.cpp.o"
  "CMakeFiles/sep_machine.dir/machine.cpp.o.d"
  "libsep_machine.a"
  "libsep_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
