file(REMOVE_RECURSE
  "libsep_machine.a"
)
