# Empty compiler generated dependencies file for sep_machine.
# This may be replaced when dependencies are built.
