
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cpu.cpp" "src/machine/CMakeFiles/sep_machine.dir/cpu.cpp.o" "gcc" "src/machine/CMakeFiles/sep_machine.dir/cpu.cpp.o.d"
  "/root/repo/src/machine/devices.cpp" "src/machine/CMakeFiles/sep_machine.dir/devices.cpp.o" "gcc" "src/machine/CMakeFiles/sep_machine.dir/devices.cpp.o.d"
  "/root/repo/src/machine/isa.cpp" "src/machine/CMakeFiles/sep_machine.dir/isa.cpp.o" "gcc" "src/machine/CMakeFiles/sep_machine.dir/isa.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/machine/CMakeFiles/sep_machine.dir/machine.cpp.o" "gcc" "src/machine/CMakeFiles/sep_machine.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sep_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
