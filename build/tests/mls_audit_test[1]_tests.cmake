add_test([=[MlsAudit.ContentNeverFlowsDownTheLattice]=]  /root/repo/build/tests/mls_audit_test [==[--gtest_filter=MlsAudit.ContentNeverFlowsDownTheLattice]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MlsAudit.ContentNeverFlowsDownTheLattice]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  mls_audit_test_TESTS MlsAudit.ContentNeverFlowsDownTheLattice)
