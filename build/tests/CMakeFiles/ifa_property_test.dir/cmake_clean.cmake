file(REMOVE_RECURSE
  "CMakeFiles/ifa_property_test.dir/ifa_property_test.cpp.o"
  "CMakeFiles/ifa_property_test.dir/ifa_property_test.cpp.o.d"
  "ifa_property_test"
  "ifa_property_test.pdb"
  "ifa_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
