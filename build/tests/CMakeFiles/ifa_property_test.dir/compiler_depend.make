# Empty compiler generated dependencies file for ifa_property_test.
# This may be replaced when dependencies are built.
