# Empty dependencies file for cpu_property_test.
# This may be replaced when dependencies are built.
