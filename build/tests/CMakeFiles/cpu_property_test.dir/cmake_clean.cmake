file(REMOVE_RECURSE
  "CMakeFiles/cpu_property_test.dir/cpu_property_test.cpp.o"
  "CMakeFiles/cpu_property_test.dir/cpu_property_test.cpp.o.d"
  "cpu_property_test"
  "cpu_property_test.pdb"
  "cpu_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
