file(REMOVE_RECURSE
  "CMakeFiles/scheduling_test.dir/scheduling_test.cpp.o"
  "CMakeFiles/scheduling_test.dir/scheduling_test.cpp.o.d"
  "scheduling_test"
  "scheduling_test.pdb"
  "scheduling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
