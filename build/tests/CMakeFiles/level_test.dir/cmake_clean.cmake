file(REMOVE_RECURSE
  "CMakeFiles/level_test.dir/level_test.cpp.o"
  "CMakeFiles/level_test.dir/level_test.cpp.o.d"
  "level_test"
  "level_test.pdb"
  "level_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
