# Empty compiler generated dependencies file for level_test.
# This may be replaced when dependencies are built.
