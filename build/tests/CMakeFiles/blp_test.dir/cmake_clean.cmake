file(REMOVE_RECURSE
  "CMakeFiles/blp_test.dir/blp_test.cpp.o"
  "CMakeFiles/blp_test.dir/blp_test.cpp.o.d"
  "blp_test"
  "blp_test.pdb"
  "blp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
