# Empty dependencies file for blp_test.
# This may be replaced when dependencies are built.
