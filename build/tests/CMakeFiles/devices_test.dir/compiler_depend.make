# Empty compiler generated dependencies file for devices_test.
# This may be replaced when dependencies are built.
