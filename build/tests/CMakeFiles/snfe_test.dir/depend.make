# Empty dependencies file for snfe_test.
# This may be replaced when dependencies are built.
