file(REMOVE_RECURSE
  "CMakeFiles/snfe_test.dir/snfe_test.cpp.o"
  "CMakeFiles/snfe_test.dir/snfe_test.cpp.o.d"
  "snfe_test"
  "snfe_test.pdb"
  "snfe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
