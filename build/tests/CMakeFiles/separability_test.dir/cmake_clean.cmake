file(REMOVE_RECURSE
  "CMakeFiles/separability_test.dir/separability_test.cpp.o"
  "CMakeFiles/separability_test.dir/separability_test.cpp.o.d"
  "separability_test"
  "separability_test.pdb"
  "separability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
