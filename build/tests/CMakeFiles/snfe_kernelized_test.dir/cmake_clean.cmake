file(REMOVE_RECURSE
  "CMakeFiles/snfe_kernelized_test.dir/snfe_kernelized_test.cpp.o"
  "CMakeFiles/snfe_kernelized_test.dir/snfe_kernelized_test.cpp.o.d"
  "snfe_kernelized_test"
  "snfe_kernelized_test.pdb"
  "snfe_kernelized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfe_kernelized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
