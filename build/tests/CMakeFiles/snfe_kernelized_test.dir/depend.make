# Empty dependencies file for snfe_kernelized_test.
# This may be replaced when dependencies are built.
