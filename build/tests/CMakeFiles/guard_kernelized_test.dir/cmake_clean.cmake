file(REMOVE_RECURSE
  "CMakeFiles/guard_kernelized_test.dir/guard_kernelized_test.cpp.o"
  "CMakeFiles/guard_kernelized_test.dir/guard_kernelized_test.cpp.o.d"
  "guard_kernelized_test"
  "guard_kernelized_test.pdb"
  "guard_kernelized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guard_kernelized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
