# Empty compiler generated dependencies file for guard_kernelized_test.
# This may be replaced when dependencies are built.
