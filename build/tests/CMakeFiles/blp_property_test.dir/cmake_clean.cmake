file(REMOVE_RECURSE
  "CMakeFiles/blp_property_test.dir/blp_property_test.cpp.o"
  "CMakeFiles/blp_property_test.dir/blp_property_test.cpp.o.d"
  "blp_property_test"
  "blp_property_test.pdb"
  "blp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
