# Empty dependencies file for blp_property_test.
# This may be replaced when dependencies are built.
