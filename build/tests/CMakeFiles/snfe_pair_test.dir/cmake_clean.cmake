file(REMOVE_RECURSE
  "CMakeFiles/snfe_pair_test.dir/snfe_pair_test.cpp.o"
  "CMakeFiles/snfe_pair_test.dir/snfe_pair_test.cpp.o.d"
  "snfe_pair_test"
  "snfe_pair_test.pdb"
  "snfe_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfe_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
