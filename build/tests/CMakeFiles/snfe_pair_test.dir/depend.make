# Empty dependencies file for snfe_pair_test.
# This may be replaced when dependencies are built.
