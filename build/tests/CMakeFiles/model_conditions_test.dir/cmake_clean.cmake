file(REMOVE_RECURSE
  "CMakeFiles/model_conditions_test.dir/model_conditions_test.cpp.o"
  "CMakeFiles/model_conditions_test.dir/model_conditions_test.cpp.o.d"
  "model_conditions_test"
  "model_conditions_test.pdb"
  "model_conditions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
