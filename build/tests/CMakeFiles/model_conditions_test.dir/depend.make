# Empty dependencies file for model_conditions_test.
# This may be replaced when dependencies are built.
