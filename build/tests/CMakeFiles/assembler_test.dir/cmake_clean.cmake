file(REMOVE_RECURSE
  "CMakeFiles/assembler_test.dir/assembler_test.cpp.o"
  "CMakeFiles/assembler_test.dir/assembler_test.cpp.o.d"
  "assembler_test"
  "assembler_test.pdb"
  "assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
