# Empty dependencies file for wirecut_test.
# This may be replaced when dependencies are built.
