file(REMOVE_RECURSE
  "CMakeFiles/wirecut_test.dir/wirecut_test.cpp.o"
  "CMakeFiles/wirecut_test.dir/wirecut_test.cpp.o.d"
  "wirecut_test"
  "wirecut_test.pdb"
  "wirecut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wirecut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
