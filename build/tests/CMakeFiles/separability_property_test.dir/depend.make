# Empty dependencies file for separability_property_test.
# This may be replaced when dependencies are built.
