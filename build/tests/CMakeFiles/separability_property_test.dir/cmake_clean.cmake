file(REMOVE_RECURSE
  "CMakeFiles/separability_property_test.dir/separability_property_test.cpp.o"
  "CMakeFiles/separability_property_test.dir/separability_property_test.cpp.o.d"
  "separability_property_test"
  "separability_property_test.pdb"
  "separability_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separability_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
