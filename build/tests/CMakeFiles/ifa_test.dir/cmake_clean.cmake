file(REMOVE_RECURSE
  "CMakeFiles/ifa_test.dir/ifa_test.cpp.o"
  "CMakeFiles/ifa_test.dir/ifa_test.cpp.o.d"
  "ifa_test"
  "ifa_test.pdb"
  "ifa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
