# Empty dependencies file for ifa_test.
# This may be replaced when dependencies are built.
