file(REMOVE_RECURSE
  "CMakeFiles/interrupt_priority_test.dir/interrupt_priority_test.cpp.o"
  "CMakeFiles/interrupt_priority_test.dir/interrupt_priority_test.cpp.o.d"
  "interrupt_priority_test"
  "interrupt_priority_test.pdb"
  "interrupt_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
