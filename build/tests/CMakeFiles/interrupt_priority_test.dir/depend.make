# Empty dependencies file for interrupt_priority_test.
# This may be replaced when dependencies are built.
