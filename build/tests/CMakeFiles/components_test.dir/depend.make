# Empty dependencies file for components_test.
# This may be replaced when dependencies are built.
