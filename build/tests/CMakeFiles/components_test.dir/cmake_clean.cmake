file(REMOVE_RECURSE
  "CMakeFiles/components_test.dir/components_test.cpp.o"
  "CMakeFiles/components_test.dir/components_test.cpp.o.d"
  "components_test"
  "components_test.pdb"
  "components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
