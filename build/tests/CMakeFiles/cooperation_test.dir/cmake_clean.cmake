file(REMOVE_RECURSE
  "CMakeFiles/cooperation_test.dir/cooperation_test.cpp.o"
  "CMakeFiles/cooperation_test.dir/cooperation_test.cpp.o.d"
  "cooperation_test"
  "cooperation_test.pdb"
  "cooperation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
