# Empty dependencies file for cooperation_test.
# This may be replaced when dependencies are built.
