# Empty dependencies file for network_property_test.
# This may be replaced when dependencies are built.
