file(REMOVE_RECURSE
  "CMakeFiles/network_property_test.dir/network_property_test.cpp.o"
  "CMakeFiles/network_property_test.dir/network_property_test.cpp.o.d"
  "network_property_test"
  "network_property_test.pdb"
  "network_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
