file(REMOVE_RECURSE
  "CMakeFiles/trace_equivalence_test.dir/trace_equivalence_test.cpp.o"
  "CMakeFiles/trace_equivalence_test.dir/trace_equivalence_test.cpp.o.d"
  "trace_equivalence_test"
  "trace_equivalence_test.pdb"
  "trace_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
