# Empty compiler generated dependencies file for trace_equivalence_test.
# This may be replaced when dependencies are built.
