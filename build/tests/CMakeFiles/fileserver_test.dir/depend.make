# Empty dependencies file for fileserver_test.
# This may be replaced when dependencies are built.
