file(REMOVE_RECURSE
  "CMakeFiles/fileserver_test.dir/fileserver_test.cpp.o"
  "CMakeFiles/fileserver_test.dir/fileserver_test.cpp.o.d"
  "fileserver_test"
  "fileserver_test.pdb"
  "fileserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fileserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
