file(REMOVE_RECURSE
  "CMakeFiles/mls_audit_test.dir/mls_audit_test.cpp.o"
  "CMakeFiles/mls_audit_test.dir/mls_audit_test.cpp.o.d"
  "mls_audit_test"
  "mls_audit_test.pdb"
  "mls_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mls_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
