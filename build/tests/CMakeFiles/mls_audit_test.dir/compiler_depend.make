# Empty compiler generated dependencies file for mls_audit_test.
# This may be replaced when dependencies are built.
