# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mls_audit_test.
