# Empty compiler generated dependencies file for bench_machine.
# This may be replaced when dependencies are built.
