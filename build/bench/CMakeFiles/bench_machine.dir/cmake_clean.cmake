file(REMOVE_RECURSE
  "CMakeFiles/bench_machine.dir/bench_machine.cpp.o"
  "CMakeFiles/bench_machine.dir/bench_machine.cpp.o.d"
  "bench_machine"
  "bench_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
