# Empty compiler generated dependencies file for bench_spooler.
# This may be replaced when dependencies are built.
