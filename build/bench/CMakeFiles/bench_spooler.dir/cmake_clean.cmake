file(REMOVE_RECURSE
  "CMakeFiles/bench_spooler.dir/bench_spooler.cpp.o"
  "CMakeFiles/bench_spooler.dir/bench_spooler.cpp.o.d"
  "bench_spooler"
  "bench_spooler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spooler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
