# Empty compiler generated dependencies file for bench_kernel_size.
# This may be replaced when dependencies are built.
