file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_size.dir/bench_kernel_size.cpp.o"
  "CMakeFiles/bench_kernel_size.dir/bench_kernel_size.cpp.o.d"
  "bench_kernel_size"
  "bench_kernel_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
