file(REMOVE_RECURSE
  "CMakeFiles/bench_wirecut.dir/bench_wirecut.cpp.o"
  "CMakeFiles/bench_wirecut.dir/bench_wirecut.cpp.o.d"
  "bench_wirecut"
  "bench_wirecut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wirecut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
