# Empty compiler generated dependencies file for bench_wirecut.
# This may be replaced when dependencies are built.
