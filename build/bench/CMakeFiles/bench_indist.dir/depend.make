# Empty dependencies file for bench_indist.
# This may be replaced when dependencies are built.
