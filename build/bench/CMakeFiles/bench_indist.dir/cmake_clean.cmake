file(REMOVE_RECURSE
  "CMakeFiles/bench_indist.dir/bench_indist.cpp.o"
  "CMakeFiles/bench_indist.dir/bench_indist.cpp.o.d"
  "bench_indist"
  "bench_indist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
