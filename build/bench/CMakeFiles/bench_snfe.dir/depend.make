# Empty dependencies file for bench_snfe.
# This may be replaced when dependencies are built.
