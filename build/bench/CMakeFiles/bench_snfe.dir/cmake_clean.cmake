file(REMOVE_RECURSE
  "CMakeFiles/bench_snfe.dir/bench_snfe.cpp.o"
  "CMakeFiles/bench_snfe.dir/bench_snfe.cpp.o.d"
  "bench_snfe"
  "bench_snfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
