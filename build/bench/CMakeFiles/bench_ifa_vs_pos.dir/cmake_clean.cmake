file(REMOVE_RECURSE
  "CMakeFiles/bench_ifa_vs_pos.dir/bench_ifa_vs_pos.cpp.o"
  "CMakeFiles/bench_ifa_vs_pos.dir/bench_ifa_vs_pos.cpp.o.d"
  "bench_ifa_vs_pos"
  "bench_ifa_vs_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ifa_vs_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
