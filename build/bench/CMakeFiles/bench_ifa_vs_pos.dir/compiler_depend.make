# Empty compiler generated dependencies file for bench_ifa_vs_pos.
# This may be replaced when dependencies are built.
