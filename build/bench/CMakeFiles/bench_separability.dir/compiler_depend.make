# Empty compiler generated dependencies file for bench_separability.
# This may be replaced when dependencies are built.
