file(REMOVE_RECURSE
  "CMakeFiles/bench_separability.dir/bench_separability.cpp.o"
  "CMakeFiles/bench_separability.dir/bench_separability.cpp.o.d"
  "bench_separability"
  "bench_separability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
