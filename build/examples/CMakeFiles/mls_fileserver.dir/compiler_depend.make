# Empty compiler generated dependencies file for mls_fileserver.
# This may be replaced when dependencies are built.
