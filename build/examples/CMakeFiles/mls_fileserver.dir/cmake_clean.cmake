file(REMOVE_RECURSE
  "CMakeFiles/mls_fileserver.dir/mls_fileserver.cpp.o"
  "CMakeFiles/mls_fileserver.dir/mls_fileserver.cpp.o.d"
  "mls_fileserver"
  "mls_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mls_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
