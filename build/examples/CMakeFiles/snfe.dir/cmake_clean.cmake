file(REMOVE_RECURSE
  "CMakeFiles/snfe.dir/snfe.cpp.o"
  "CMakeFiles/snfe.dir/snfe.cpp.o.d"
  "snfe"
  "snfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
