# Empty compiler generated dependencies file for snfe.
# This may be replaced when dependencies are built.
