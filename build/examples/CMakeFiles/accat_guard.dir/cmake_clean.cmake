file(REMOVE_RECURSE
  "CMakeFiles/accat_guard.dir/accat_guard.cpp.o"
  "CMakeFiles/accat_guard.dir/accat_guard.cpp.o.d"
  "accat_guard"
  "accat_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accat_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
