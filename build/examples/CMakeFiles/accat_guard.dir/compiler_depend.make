# Empty compiler generated dependencies file for accat_guard.
# This may be replaced when dependencies are built.
